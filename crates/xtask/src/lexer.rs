//! A minimal Rust lexer for the protocol lints.
//!
//! This is deliberately *not* a full Rust grammar (the workspace builds
//! offline, so pulling in `syn` is not an option). It produces just enough
//! structure for the rules in [`crate::rules`]:
//!
//! * comments and doc comments are dropped;
//! * string/char literals collapse to placeholder tokens, so a `panic!`
//!   spelled inside a string never trips a rule;
//! * every token carries its 1-based source line;
//! * `#[cfg(test)]` items (and anything under them) can be stripped, so
//!   test-only code is out of scope for the hot-path rules.

/// One lexed token: its text and the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub text: String,
    pub line: u32,
}

impl Token {
    fn new(text: impl Into<String>, line: u32) -> Self {
        Token {
            text: text.into(),
            line,
        }
    }
}

/// Placeholder text for string literals.
pub const STR_TOKEN: &str = "<str>";
/// Placeholder text for char literals.
pub const CHAR_TOKEN: &str = "<char>";
/// Placeholder text for lifetimes.
pub const LIFETIME_TOKEN: &str = "<lifetime>";

/// Multi-character operators lexed as single tokens, longest first.
const COMPOUND_OPS: &[&str] = &[
    "..=", "<<=", ">>=", "=>", "::", "..", "->", "+=", "-=", "*=", "/=", "%=", "==", "!=", "<=",
    ">=", "&&", "||", "<<", ">>",
];

/// Lexes Rust source into a comment- and literal-free token stream.
pub fn tokenize(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line and (nested) block comments.
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // String literals.
        if c == '"' {
            let start_line = line;
            i += 1;
            while i < b.len() {
                match b[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            out.push(Token::new(STR_TOKEN, start_line));
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            let start_line = line;
            if i + 1 < b.len() && b[i + 1] == '\\' {
                // Escaped char literal: scan to the closing quote.
                i += 2;
                while i < b.len() && b[i] != '\'' {
                    i += 1;
                }
                i += 1;
                out.push(Token::new(CHAR_TOKEN, start_line));
            } else if i + 2 < b.len() && b[i + 2] == '\'' {
                // Plain one-char literal 'x'.
                i += 3;
                out.push(Token::new(CHAR_TOKEN, start_line));
            } else {
                // Lifetime: consume the identifier.
                i += 1;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.push(Token::new(LIFETIME_TOKEN, start_line));
            }
            continue;
        }
        // Identifier, keyword, or a string prefix (r", br", b").
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            let ident: String = b[start..i].iter().collect();
            if (ident == "r" || ident == "br") && i < b.len() && (b[i] == '"' || b[i] == '#') {
                let start_line = line;
                let mut hashes = 0;
                while i < b.len() && b[i] == '#' {
                    hashes += 1;
                    i += 1;
                }
                if i < b.len() && b[i] == '"' {
                    i += 1;
                    // Scan for `"` followed by `hashes` hash marks.
                    'raw: while i < b.len() {
                        if b[i] == '\n' {
                            line += 1;
                            i += 1;
                            continue;
                        }
                        if b[i] == '"' {
                            let mut k = 0;
                            while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        i += 1;
                    }
                    out.push(Token::new(STR_TOKEN, start_line));
                    continue;
                }
                // `r#ident` raw identifier: fall through, emit as ident.
                let rstart = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.push(Token::new(b[rstart..i].iter().collect::<String>(), line));
                continue;
            }
            if ident == "b" && i < b.len() && (b[i] == '"' || b[i] == '\'') {
                // Byte string / byte char: re-lex from the quote.
                continue;
            }
            out.push(Token::new(ident, line));
            continue;
        }
        // Number: integer or float, without swallowing `..` ranges.
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            if i + 1 < b.len() && b[i] == '.' && b[i + 1].is_ascii_digit() {
                i += 1;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            }
            out.push(Token::new(b[start..i].iter().collect::<String>(), line));
            continue;
        }
        // Compound then single-character punctuation.
        let mut matched = false;
        for op in COMPOUND_OPS {
            let chars: Vec<char> = op.chars().collect();
            if b[i..].starts_with(&chars[..]) {
                out.push(Token::new(*op, line));
                i += chars.len();
                matched = true;
                break;
            }
        }
        if !matched {
            out.push(Token::new(c.to_string(), line));
            i += 1;
        }
    }
    out
}

/// Returns the index of the token closing the group opened at `open`.
///
/// `tokens[open]` must be one of `(`, `[`, `{`. Returns `tokens.len()` when
/// the group never closes (malformed input).
pub fn matching(tokens: &[Token], open: usize) -> usize {
    let (o, c) = match tokens[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return tokens.len(),
    };
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.text == o {
            depth += 1;
        } else if t.text == c {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len()
}

/// Removes `#[cfg(test)]` items (attribute plus the item it gates) from a
/// token stream. `#[cfg(not(test))]` items are kept: they are the code that
/// actually ships.
pub fn strip_cfg_test(tokens: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "#" && i + 1 < tokens.len() && tokens[i + 1].text == "[" {
            let close = matching(&tokens, i + 1);
            if close < tokens.len() && attr_is_cfg_test(&tokens[i + 2..close]) {
                i = skip_item(&tokens, close + 1);
                continue;
            }
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Whether attribute tokens (between `#[` and `]`) gate on `cfg(test)`.
fn attr_is_cfg_test(attr: &[Token]) -> bool {
    let has = |name: &str| attr.iter().any(|t| t.text == name);
    if !has("cfg") || !has("test") {
        return false;
    }
    // `cfg(not(test))` gates the *non*-test build.
    let negated = attr
        .windows(3)
        .any(|w| w[0].text == "not" && w[1].text == "(" && w[2].text == "test");
    !negated
}

/// Skips one item starting at `start`: any further attributes, then either a
/// `;`-terminated item or one ending with its first balanced `{ ... }` block.
fn skip_item(tokens: &[Token], start: usize) -> usize {
    let mut i = start;
    // Further attributes on the same item.
    while i + 1 < tokens.len() && tokens[i].text == "#" && tokens[i + 1].text == "[" {
        i = matching(tokens, i + 1) + 1;
    }
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            ";" => return i + 1,
            "{" => return matching(tokens, i) + 1,
            "(" | "[" => i = matching(tokens, i) + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_vanish() {
        let toks = texts("let x = \"panic!(\"; // unwrap()\n/* expect( */ y");
        assert_eq!(toks, vec!["let", "x", "=", STR_TOKEN, ";", "y"]);
    }

    #[test]
    fn raw_strings_and_chars() {
        let toks = texts("r#\"a \" b\"# 'x' '\\n' 'a");
        assert_eq!(
            toks,
            vec![STR_TOKEN, CHAR_TOKEN, CHAR_TOKEN, LIFETIME_TOKEN]
        );
    }

    #[test]
    fn ranges_do_not_become_floats() {
        let toks = texts("0..37 1.5 0x1F");
        assert_eq!(toks, vec!["0", "..", "37", "1.5", "0x1F"]);
    }

    #[test]
    fn compound_operators_stay_joined() {
        let toks = texts("a => b :: c >> 8 += d");
        assert_eq!(toks, vec!["a", "=>", "b", "::", "c", ">>", "8", "+=", "d"]);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = tokenize("a\nb\n\nc");
        assert_eq!(
            toks.iter().map(|t| t.line).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
    }

    #[test]
    fn cfg_test_mod_is_stripped() {
        let src = "fn live() {} #[cfg(test)] mod tests { fn t() { panic!(); } } fn tail() {}";
        let toks = strip_cfg_test(tokenize(src));
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(!texts.contains(&"panic"));
        assert!(texts.contains(&"live"));
        assert!(texts.contains(&"tail"));
    }

    #[test]
    fn cfg_not_test_is_kept() {
        let src = "#[cfg(not(test))] fn live() { panic!(); }";
        let toks = strip_cfg_test(tokenize(src));
        assert!(toks.iter().any(|t| t.text == "panic"));
    }

    #[test]
    fn cfg_test_semicolon_item_is_stripped() {
        let src = "#[cfg(test)] use helper::thing; fn live() {}";
        let toks = strip_cfg_test(tokenize(src));
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(!texts.contains(&"helper"));
        assert!(texts.contains(&"live"));
    }
}
