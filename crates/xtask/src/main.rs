//! Workspace automation tasks, invoked as `cargo xtask <task>`.
//!
//! The only task so far is `lint`: a custom static-analysis pass enforcing
//! the protocol-robustness rules R1–R6 described in `DEVELOPMENT.md`. It is
//! written against a minimal hand-rolled lexer ([`lexer`]) because the
//! workspace builds fully offline — no `syn`, no network.
//!
//! Exit status: 0 when clean, 1 on any violation (or I/O failure), so CI
//! can gate on it directly.

#![forbid(unsafe_code)]

mod lexer;
mod rules;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rules::RuleSet;

/// Crates whose `src/` is held to all four rules: the protocol hot path.
/// `ble-telemetry` qualifies because its sinks run inline on that hot path
/// (every PHY/LL event passes through [`TelemetrySink::emit`]).
const PROTOCOL_CRATES: &[&str] = &["ble-link", "ble-phy", "ble-crypto", "ble-telemetry"];

/// Crates exempt from the hot-path rules R1–R3 (still checked for R4).
/// `injectable` and `bench` are attack tooling and measurement harnesses —
/// they may assert; `ble-invariants` is the audited sink for masked casts;
/// `simkit` is simulation infrastructure whose time operators are the
/// checked arithmetic the protocol crates rely on; the device/host crates
/// model application behaviour, not the radio hot path.
const R1_EXEMPT_NOTE: &[&str] = &[
    "injectable",
    "bench",
    "ble-invariants",
    "simkit",
    "ble-devices",
    "ble-host",
    "ble-scenario",
];

/// Crates that consume the `World` arena: rule R5 bans the pre-arena
/// `Rc<RefCell<…>>` node-graph pattern from their `src/`, `tests/`,
/// `benches/` and `src/bin/` trees. The workspace-level `examples/` and
/// `tests/` directories are held to the same rule (see [`lint`]).
const R5_ARENA_CONSUMERS: &[&str] = &["bench", "injectable", "ble-devices", "ble-scenario"];

/// Crates whose `pub` structs face the radio frame pipeline: rule R6 bans
/// `Vec<u8>` fields there so the zero-allocation delivery path cannot
/// silently regrow heap buffers (use the inline `ble_phy::Pdu` instead).
const R6_FRAME_FACING: &[&str] = &["ble-phy"];

/// Just the arena-ownership rule, for trees outside any crate's `src/`.
const R5_ONLY: RuleSet = RuleSet {
    r1: false,
    r2: false,
    r3: false,
    r4: false,
    r5: true,
    r6: false,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("help") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!("usage: cargo xtask <task>");
    eprintln!();
    eprintln!("tasks:");
    eprintln!("  lint [--root <dir>]   run the protocol lints (R1-R6) over crates/*/src, examples/ and tests/");
}

fn lint(args: &[String]) -> ExitCode {
    let root = match parse_root(args) {
        Ok(root) => root,
        Err(msg) => {
            eprintln!("xtask lint: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = match std::fs::read_dir(&crates_dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect(),
        Err(e) => {
            eprintln!("xtask lint: cannot read {}: {e}", crates_dir.display());
            return ExitCode::FAILURE;
        }
    };
    crate_dirs.sort();

    let mut violations = 0usize;
    let mut files = 0usize;
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if name == "xtask" {
            continue; // the linter does not lint itself
        }
        let mut ruleset = if PROTOCOL_CRATES.contains(&name.as_str()) {
            RuleSet::protocol()
        } else {
            debug_assert!(
                R1_EXEMPT_NOTE.contains(&name.as_str()),
                "new crate `{name}` must be classified in xtask/src/main.rs"
            );
            RuleSet::general()
        };
        if R5_ARENA_CONSUMERS.contains(&name.as_str()) {
            ruleset = ruleset.with_r5();
        }
        if R6_FRAME_FACING.contains(&name.as_str()) {
            ruleset = ruleset.with_r6();
        }
        let mut sources = Vec::new();
        collect_rs_files(&dir.join("src"), &mut sources);
        sources.sort();
        for path in sources {
            lint_file(&path, &root, ruleset, &mut files, &mut violations);
        }
        // A crate's tests and benches are exempt from the hot-path rules but
        // not from the arena-ownership rule: shared-pointer world building
        // tends to creep back in through test rigs first.
        if R5_ARENA_CONSUMERS.contains(&name.as_str()) {
            let mut extra = Vec::new();
            collect_rs_files(&dir.join("tests"), &mut extra);
            collect_rs_files(&dir.join("benches"), &mut extra);
            extra.sort();
            for path in extra {
                lint_file(&path, &root, R5_ONLY, &mut files, &mut violations);
            }
        }
    }

    // Workspace-level examples and integration tests build worlds too.
    for tree in ["examples", "tests"] {
        let mut sources = Vec::new();
        collect_rs_files(&root.join(tree), &mut sources);
        sources.sort();
        for path in sources {
            lint_file(&path, &root, R5_ONLY, &mut files, &mut violations);
        }
    }

    if violations > 0 {
        eprintln!("xtask lint: {violations} violation(s) in {files} file(s)");
        ExitCode::FAILURE
    } else {
        println!("xtask lint: clean ({files} files)");
        ExitCode::SUCCESS
    }
}

/// `--root <dir>` or the workspace root inferred from this binary's
/// manifest directory (`crates/xtask` → two levels up).
fn parse_root(args: &[String]) -> Result<PathBuf, String> {
    match args {
        [] => {}
        [flag, dir] if flag == "--root" => return Ok(PathBuf::from(dir)),
        [flag] if flag == "--root" => return Err("--root needs a directory argument".into()),
        [other, ..] => return Err(format!("unknown argument `{other}`")),
    }
    if let Some(manifest) = std::env::var_os("CARGO_MANIFEST_DIR") {
        let manifest = PathBuf::from(manifest);
        if let Some(root) = manifest.parent().and_then(Path::parent) {
            return Ok(root.to_path_buf());
        }
    }
    std::env::current_dir().map_err(|e| format!("cannot determine workspace root: {e}"))
}

fn lint_file(
    path: &Path,
    root: &Path,
    ruleset: RuleSet,
    files: &mut usize,
    violations: &mut usize,
) {
    *files += 1;
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("xtask lint: cannot read {}: {e}", path.display());
            *violations += 1;
            return;
        }
    };
    for v in rules::lint_source(&src, ruleset) {
        let rel = path.strip_prefix(root).unwrap_or(path);
        println!("{}:{}: R{}: {}", rel.display(), v.line, v.rule, v.msg);
        *violations += 1;
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
