//! Workspace automation tasks, invoked as `cargo xtask <task>`.
//!
//! * `lint` — a custom static-analysis pass enforcing the
//!   protocol-robustness and determinism rules R1–R9 described in
//!   `DEVELOPMENT.md`. It is written against a minimal hand-rolled lexer
//!   ([`lexer`]) because the workspace builds fully offline — no `syn`, no
//!   network. `lint --waivers` audits every `// xtask-allow` comment
//!   instead, failing on waivers without a `— reason` suffix.
//! * `determinism` — a runtime divergence oracle: builds release and runs
//!   every experiment binary twice at a fixed seed (and the
//!   `run_trials_parallel` binaries at 1 vs. N worker threads), hashing the
//!   artefacts and failing on any byte divergence.
//!
//! Exit status: 0 when clean, 1 on any violation/divergence (or I/O
//! failure), so CI can gate on either task directly.

#![forbid(unsafe_code)]

mod determinism;
mod perfgate;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::rules::{self, RuleSet};

/// Crates whose `src/` is held to all the hot-path rules: the protocol hot
/// path. `ble-telemetry` qualifies because its sinks run inline on that hot
/// path (every PHY/LL event passes through [`TelemetrySink::emit`]).
const PROTOCOL_CRATES: &[&str] = &["ble-link", "ble-phy", "ble-crypto", "ble-telemetry"];

/// Crates exempt from the hot-path rules R1–R3 (still checked for R4 and
/// the determinism rules). `injectable` and `bench` are attack tooling and
/// measurement harnesses — they may assert; `ble-invariants` is the audited
/// sink for masked casts; `simkit` is simulation infrastructure whose time
/// operators are the checked arithmetic the protocol crates rely on; the
/// device/host crates model application behaviour, not the radio hot path.
const R1_EXEMPT_NOTE: &[&str] = &[
    "injectable",
    "bench",
    "ble-invariants",
    "simkit",
    "ble-devices",
    "ble-host",
    "ble-scenario",
];

/// Crates that consume the `World` arena: rule R5 bans the pre-arena
/// `Rc<RefCell<…>>` node-graph pattern from their `src/`, `tests/`,
/// `benches/` and `src/bin/` trees. The workspace-level `examples/` and
/// `tests/` directories are held to the same rule (see [`lint`]).
const R5_ARENA_CONSUMERS: &[&str] = &["bench", "injectable", "ble-devices", "ble-scenario"];

/// Crates whose `pub` structs face the radio frame pipeline: rule R6 bans
/// `Vec<u8>` fields there so the zero-allocation delivery path cannot
/// silently regrow heap buffers (use the inline `ble_phy::Pdu` instead).
const R6_FRAME_FACING: &[&str] = &["ble-phy", "ble-host"];

/// Crates whose `src/` carries simulation-order-sensitive state: rule R7
/// bans `HashMap`/`HashSet` there, because anything iterated in hash order
/// (delivery scans, RNG-consuming interference loops, report aggregation)
/// silently breaks seed-for-seed replay the moment two entries coexist.
const R7_ORDER_SENSITIVE: &[&str] = &[
    "ble-phy",
    "ble-link",
    "ble-host",
    "simkit",
    "injectable",
    "ble-scenario",
    "bench",
];

/// Files exempt from R7: the reporting module aggregates *after* the
/// simulation has finished and emits through sorted (`BTreeMap`) or
/// seed-ordered structures only — audited whenever this list changes.
const R7_EXEMPT_FILES: &[&str] = &["crates/bench/src/report.rs"];

/// The single wall-clock quarantine: rule R8 bans `std::time::Instant` /
/// `SystemTime` everywhere else. Throughput and RSS pricing call into this
/// module; simulation logic never reads host time at all.
const R8_QUARANTINE_FILES: &[&str] = &["crates/bench/src/wallclock.rs"];

/// The ruleset for trees outside any crate's `src/` (workspace `examples/`
/// and `tests/`, crate `tests/`/`benches/` of arena consumers): the
/// arena-ownership rule plus the workspace-wide determinism rules. R7 is
/// deliberately absent — a test asserting over a scratch `HashMap` it never
/// iterates is harmless — but wall-clock reads and unseeded RNG corrupt
/// replayability no matter where they live.
const TREE_RULES: RuleSet = RuleSet {
    r5: true,
    r8: true,
    r9: true,
    ..RuleSet::none()
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("determinism") => determinism::run(&args[1..]),
        Some("perfgate") => perfgate::run(&args[1..]),
        Some("help") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!("usage: cargo xtask <task>");
    eprintln!();
    eprintln!("tasks:");
    eprintln!(
        "  lint [--root <dir>]          run the protocol + determinism lints (R1-R9) \
         over crates/*/src, examples/ and tests/"
    );
    eprintln!(
        "  lint --waivers [--root <dir>]  audit every `// xtask-allow` waiver; \
         fails on waivers without a `— reason` suffix"
    );
    eprintln!(
        "  determinism [--fast] [--trials <n>] [--root <dir>]  build release and \
         prove the experiment binaries byte-identical across same-seed double \
         runs and 1-vs-N-thread runs"
    );
    eprintln!(
        "  perfgate [--fast] [--trials <n>] [--update-baselines] [--root <dir>]  \
         build release, run the experiment binaries and compare their JSON \
         artefacts against benchmarks/baselines/ (sim-deterministic metrics \
         exactly, wall-clock metrics within tolerance)"
    );
}

/// The lint file walk: every `(path, ruleset)` pair the pass covers, sorted
/// by path within each tree. Shared between the violation pass and the
/// `--waivers` audit so both see the same universe of files.
fn lint_targets(root: &Path) -> Result<Vec<(PathBuf, RuleSet)>, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut targets = Vec::new();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if name == "xtask" {
            continue; // the linter does not lint itself
        }
        let mut ruleset = if PROTOCOL_CRATES.contains(&name.as_str()) {
            RuleSet::protocol()
        } else {
            debug_assert!(
                R1_EXEMPT_NOTE.contains(&name.as_str()),
                "new crate `{name}` must be classified in xtask/src/main.rs"
            );
            RuleSet::general()
        };
        if R5_ARENA_CONSUMERS.contains(&name.as_str()) {
            ruleset = ruleset.with_r5();
        }
        if R6_FRAME_FACING.contains(&name.as_str()) {
            ruleset = ruleset.with_r6();
        }
        if R7_ORDER_SENSITIVE.contains(&name.as_str()) {
            ruleset = ruleset.with_r7();
        }
        let mut sources = Vec::new();
        collect_rs_files(&dir.join("src"), &mut sources);
        sources.sort();
        for path in sources {
            let rules = file_ruleset(&path, root, ruleset);
            targets.push((path, rules));
        }
        // A crate's tests and benches are exempt from the hot-path rules but
        // not from the arena-ownership and determinism rules: shared-pointer
        // world building and wall-clock reads tend to creep back in through
        // test rigs first.
        if R5_ARENA_CONSUMERS.contains(&name.as_str()) {
            let mut extra = Vec::new();
            collect_rs_files(&dir.join("tests"), &mut extra);
            collect_rs_files(&dir.join("benches"), &mut extra);
            extra.sort();
            for path in extra {
                targets.push((path, TREE_RULES));
            }
        }
    }

    // Workspace-level examples and integration tests build worlds too.
    for tree in ["examples", "tests"] {
        let mut sources = Vec::new();
        collect_rs_files(&root.join(tree), &mut sources);
        sources.sort();
        for path in sources {
            targets.push((path, TREE_RULES));
        }
    }
    Ok(targets)
}

/// Applies per-file exemptions (the R8 quarantine module, the R7-whitelisted
/// reporting module) to a crate-level ruleset.
fn file_ruleset(path: &Path, root: &Path, mut rules: RuleSet) -> RuleSet {
    let rel = rel_slash(path, root);
    if R7_EXEMPT_FILES.iter().any(|f| rel == *f) {
        rules.r7 = false;
    }
    if R8_QUARANTINE_FILES.iter().any(|f| rel == *f) {
        rules.r8 = false;
    }
    rules
}

/// Workspace-relative path with `/` separators (for exemption matching and
/// stable report output).
fn rel_slash(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn lint(args: &[String]) -> ExitCode {
    let (root, waivers_mode) = match parse_lint_args(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("xtask lint: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let targets = match lint_targets(&root) {
        Ok(targets) => targets,
        Err(msg) => {
            eprintln!("xtask lint: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if waivers_mode {
        return audit_waivers(&root, &targets);
    }

    let mut violations = 0usize;
    let mut files = 0usize;
    for (path, rules) in &targets {
        lint_file(path, &root, *rules, &mut files, &mut violations);
    }

    if violations > 0 {
        eprintln!("xtask lint: {violations} violation(s) in {files} file(s)");
        ExitCode::FAILURE
    } else {
        println!("xtask lint: clean ({files} files)");
        ExitCode::SUCCESS
    }
}

/// `lint --waivers`: lists every `// xtask-allow` comment with file, line,
/// rules and reason, and fails when any waiver lacks a reason. The waiver
/// inventory *is* the audit trail for every place a rule is deliberately
/// broken, so a waiver that does not say why is treated as a violation.
fn audit_waivers(root: &Path, targets: &[(PathBuf, RuleSet)]) -> ExitCode {
    let mut total = 0usize;
    let mut bare = 0usize;
    for (path, _) in targets {
        let Ok(src) = std::fs::read_to_string(path) else {
            eprintln!("xtask lint: cannot read {}", path.display());
            bare += 1;
            continue;
        };
        for entry in rules::collect_waiver_entries(&src) {
            total += 1;
            let rel = rel_slash(path, root);
            let rules_list = entry
                .rules
                .iter()
                .map(|r| format!("R{r}"))
                .collect::<Vec<_>>()
                .join(",");
            match &entry.reason {
                Some(reason) => {
                    println!("{rel}:{}: {rules_list} — {reason}", entry.line);
                }
                None => {
                    bare += 1;
                    println!(
                        "{rel}:{}: {rules_list} — MISSING REASON (add `— why this \
                         site is safe` to the waiver)",
                        entry.line
                    );
                }
            }
        }
    }
    if bare > 0 {
        eprintln!("xtask lint --waivers: {bare} of {total} waiver(s) missing a reason");
        ExitCode::FAILURE
    } else {
        println!("xtask lint --waivers: {total} waiver(s), all with reasons");
        ExitCode::SUCCESS
    }
}

/// Parses `[--waivers] [--root <dir>]` in any order.
fn parse_lint_args(args: &[String]) -> Result<(PathBuf, bool), String> {
    let mut root = None;
    let mut waivers = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--waivers" => waivers = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return Err("--root needs a directory argument".into()),
            },
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok((root.map_or_else(default_root, Ok)?, waivers))
}

/// The workspace root inferred from this binary's manifest directory
/// (`crates/xtask` → two levels up), falling back to the current directory.
pub(crate) fn default_root() -> Result<PathBuf, String> {
    if let Some(manifest) = std::env::var_os("CARGO_MANIFEST_DIR") {
        let manifest = PathBuf::from(manifest);
        if let Some(root) = manifest.parent().and_then(Path::parent) {
            return Ok(root.to_path_buf());
        }
    }
    std::env::current_dir().map_err(|e| format!("cannot determine workspace root: {e}"))
}

fn lint_file(
    path: &Path,
    root: &Path,
    ruleset: RuleSet,
    files: &mut usize,
    violations: &mut usize,
) {
    *files += 1;
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("xtask lint: cannot read {}: {e}", path.display());
            *violations += 1;
            return;
        }
    };
    for v in rules::lint_source(&src, ruleset) {
        println!(
            "{}:{}: R{}: {}",
            rel_slash(path, root),
            v.line,
            v.rule,
            v.msg
        );
        *violations += 1;
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
