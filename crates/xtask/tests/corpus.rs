//! Fixture-driven corpus for the lint rules R1–R9.
//!
//! Every `tests/fixtures/*.rs` file is a minimal Rust snippet with a
//! directive header the lexer never sees (comments are stripped before the
//! rules run):
//!
//! ```text
//! //# lint: protocol            — the ruleset (base, optionally +rN flags)
//! //# expect: R2@4 R1@7         — exact (rule, line) violations, or `none`
//! ```
//!
//! Base rulesets: `protocol` (R1–R4 + R8/R9), `general` (R4 + R8/R9),
//! `none`. Flags: `+r5` … `+r9`. The harness runs
//! [`xtask::rules::lint_source`] over the snippet body and requires the
//! fired `(rule, line)` set to match the header exactly — positives and
//! negatives live in the same file, which keeps each fixture an honest
//! miniature of real code rather than an isolated assertion.

use std::path::PathBuf;

use xtask::rules::{lint_source, RuleSet};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Parses `protocol+r5+r6`-style ruleset specs.
fn parse_ruleset(spec: &str) -> RuleSet {
    let mut parts = spec.split('+').map(str::trim);
    let mut rules = match parts.next() {
        Some("protocol") => RuleSet::protocol(),
        Some("general") => RuleSet::general(),
        Some("none") => RuleSet::none(),
        other => panic!("unknown base ruleset {other:?} (want protocol|general|none)"),
    };
    for flag in parts {
        match flag {
            "r5" => rules.r5 = true,
            "r6" => rules.r6 = true,
            "r7" => rules.r7 = true,
            "r8" => rules.r8 = true,
            "r9" => rules.r9 = true,
            other => panic!("unknown ruleset flag `{other}`"),
        }
    }
    rules
}

/// Parses `R2@4 R1@7` / `none` expectation lists into (rule, line) pairs.
fn parse_expect(spec: &str) -> Vec<(u8, u32)> {
    if spec.trim() == "none" || spec.trim().is_empty() {
        return Vec::new();
    }
    spec.split_whitespace()
        .map(|entry| {
            let (rule, line) = entry
                .split_once('@')
                .unwrap_or_else(|| panic!("bad expect entry `{entry}` (want R<n>@<line>)"));
            let rule = rule
                .strip_prefix('R')
                .and_then(|n| n.parse().ok())
                .unwrap_or_else(|| panic!("bad rule in expect entry `{entry}`"));
            let line = line
                .parse()
                .unwrap_or_else(|_| panic!("bad line in expect entry `{entry}`"));
            (rule, line)
        })
        .collect()
}

struct Fixture {
    name: String,
    rules: RuleSet,
    expect: Vec<(u8, u32)>,
    src: String,
}

fn load(path: &std::path::Path) -> Fixture {
    let src = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let mut rules = None;
    let mut expect = None;
    for line in src.lines() {
        if let Some(spec) = line.strip_prefix("//# lint:") {
            rules = Some(parse_ruleset(spec.trim()));
        } else if let Some(spec) = line.strip_prefix("//# expect:") {
            expect = Some(parse_expect(spec));
        }
    }
    Fixture {
        rules: rules.unwrap_or_else(|| panic!("{name}: missing `//# lint:` directive")),
        expect: expect.unwrap_or_else(|| panic!("{name}: missing `//# expect:` directive")),
        name,
        src,
    }
}

#[test]
fn every_fixture_fires_exactly_as_annotated() {
    let dir = fixtures_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 9,
        "corpus must cover every rule; found only {} fixtures",
        paths.len()
    );

    let mut failures = Vec::new();
    let mut rules_covered = std::collections::BTreeSet::new();
    for path in &paths {
        let fixture = load(path);
        let fired: Vec<(u8, u32)> = lint_source(&fixture.src, fixture.rules)
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect();
        let mut expected = fixture.expect.clone();
        expected.sort_by_key(|&(rule, line)| (line, rule));
        for &(rule, _) in &expected {
            rules_covered.insert(rule);
        }
        if fired != expected {
            failures.push(format!(
                "{}: expected {:?}, fired {:?}",
                fixture.name, expected, fired
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "fixture mismatches:\n  {}",
        failures.join("\n  ")
    );
    // Every rule must have at least one positive fixture, so a new rule
    // cannot land without corpus coverage.
    assert_eq!(
        rules_covered.into_iter().collect::<Vec<_>>(),
        (1..=9).collect::<Vec<_>>(),
        "every rule R1-R9 needs a positive fixture"
    );
}

#[test]
fn fixture_directives_are_well_formed() {
    // A fixture whose `expect` names a line past the end of the file is a
    // stale annotation; catch it here rather than as a silent mismatch.
    let dir = fixtures_dir();
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let fixture = load(&path);
        let lines = fixture.src.lines().count() as u32;
        for &(rule, line) in &fixture.expect {
            assert!(
                line <= lines,
                "{}: R{rule}@{line} is past the end of the file ({lines} lines)",
                fixture.name
            );
        }
    }
}
