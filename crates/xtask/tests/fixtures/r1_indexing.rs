//# lint: protocol
//# expect: R1@4 R1@5

fn f(a: &[u8], i: usize) -> u8 { a[i] }
fn g(a: &[u8], n: usize) -> &[u8] { &a[n..] }
fn ok1(a: [u8; 4]) -> u8 { a[0] }
fn ok2(a: &[u8]) -> &[u8] { &a[..2] }
fn ok3(a: [u8; 3], i: usize) -> u8 { a[i % 3] }
fn ok4(a: &[u8], i: usize) -> Option<&u8> { a.get(i) }
fn ok5() -> [u8; 5] { [0u8; 5] }
