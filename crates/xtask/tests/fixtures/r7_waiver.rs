//# lint: general+r7
//# expect: R7@7

// xtask-allow: R7 — membership-only set behind a deterministic hasher; never iterated
type Tombstones = HashSet<u64, BuildHasherDefault<IdHasher>>;

type Bare = HashSet<u64>;
