//# lint: general+r5
//# expect: R5@4 R5@6 R5@8

fn a(x: Rc<RefCell<Device>>) {}

fn b() { let d = Rc::new(RefCell::new(Device::default())); }

fn c(x: std::rc::Rc<std::cell::RefCell<Device>>) {}

fn ok(a: Rc<str>, b: RefCell<u8>) {}
