//# lint: protocol
//# expect: R2@8 R2@10

// The lossy-accounting shape the campaign runner replaced: a u64 trial
// count truncated to usize to pre-allocate one slot per trial. On a
// 32-bit host `count as usize` silently wraps, so the buffer is smaller
// than the campaign it claims to hold.
fn prealloc(count: u64) -> Vec<Option<u32>> { vec![None; count as usize] }

fn signed_cursor(count: u64) -> isize { count as isize }

// The checked form makes the narrowing explicit and fallible.
fn prealloc_checked(count: u64) -> Option<Vec<Option<u32>>> {
    let len = usize::try_from(count).ok()?;
    Some(vec![None; len])
}
