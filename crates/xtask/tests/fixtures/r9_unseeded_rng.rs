//# lint: general
//# expect: R9@4 R9@6 R9@8 R9@10

fn a() -> SmallRng { SmallRng::from_entropy() }

fn b() -> ThreadRng { rand::thread_rng() }

fn c() -> u64 { rand::random() }

fn d(rng: &mut OsRng) -> u64 { rng.next_u64() }

fn ok1(seed: u64) -> SimRng { SimRng::seed_from(seed) }

fn ok2(seed: u64) -> SmallRng { SmallRng::seed_from_u64(seed) }

fn ok3(parent: &mut SimRng) -> SimRng { parent.fork() }
