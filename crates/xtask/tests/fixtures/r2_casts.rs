//# lint: protocol
//# expect: R2@4 R2@5 R2@6

fn a(x: u64) -> u8 { x as u8 }
fn b(x: u64) -> u16 { x as u16 }
fn c(x: u64) -> i32 { x as i32 }
fn ok1(x: u8) -> u64 { x as u64 }
fn ok2(x: u8) -> usize { x as usize }
use std::fmt as formatting;
