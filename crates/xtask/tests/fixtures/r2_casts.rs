//# lint: protocol
//# expect: R2@4 R2@5 R2@6 R2@8 R2@9

fn a(x: u64) -> u8 { x as u8 }
fn b(x: u64) -> u16 { x as u16 }
fn c(x: u64) -> i32 { x as i32 }
fn ok1(x: u8) -> u64 { x as u64 }
fn narrow_on_32bit(x: u64) -> usize { x as usize }
fn signed_platform(x: i64) -> isize { x as isize }
use std::fmt as formatting;
