//# lint: general
//# expect: R8@13

/// The span-tracing wall clock is an injected `fn() -> u64` pointer: the
/// harness hands the quarantined reader (`bench::wallclock::monotonic_ns`)
/// in at build time, and protocol code only ever calls the pointer — so
/// the determinism lint stays quiet on the telemetry side.
fn install_span_clock(clock: fn() -> u64) -> u64 {
    clock()
}

fn sneaky_inline_clock() -> u64 {
    std::time::Instant::now().elapsed().subsec_nanos() as u64
}
