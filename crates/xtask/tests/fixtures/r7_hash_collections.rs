//# lint: general+r7
//# expect: R7@4 R7@6 R7@7 R7@10

use std::collections::HashMap;

fn build() -> HashMap<u64, u32> {
    HashMap::new()
}

fn dedupe(xs: &[u64]) -> std::collections::HashSet<u64> {
    xs.iter().copied().collect()
}

use std::collections::{BTreeMap, BTreeSet};

fn sorted() -> BTreeMap<u64, u32> {
    BTreeMap::new()
}

fn sorted_set() -> BTreeSet<u64> {
    BTreeSet::new()
}
