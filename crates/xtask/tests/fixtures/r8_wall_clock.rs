//# lint: general
//# expect: R8@4 R8@6 R8@9

use std::time::Instant;

use std::time::{Duration, SystemTime};

fn price() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

fn sim_time_is_fine() -> simkit::Duration {
    simkit::Duration::from_micros(150)
}

fn sim_instant_is_fine(t: simkit::Instant) -> simkit::Instant {
    t
}
