//# lint: protocol
//# expect: R3@4 R3@5

fn a(d: Duration) -> u64 { d.as_micros() + 5 }
fn b(d: Duration, x: u64) -> u64 { x - d.as_micros() }
fn ok1(a: Duration, b: Duration) -> u64 { (a + b).as_micros() }
fn ok2(d: Duration, x: u64) -> u64 { d.as_micros().saturating_add(x) }
fn ok3(d: Duration) -> u64 { d.as_micros() }
