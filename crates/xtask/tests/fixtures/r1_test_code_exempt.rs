//# lint: protocol
//# expect: none

#[cfg(test)]
mod tests {
    #[test]
    fn explodes() {
        panic!("test code may panic freely");
    }
}

fn live() -> u8 {
    0
}
