//# lint: protocol
//# expect: R4@7

fn flagged(p: ControlPdu) {
    match p {
        ControlPdu::PingReq => {}
        _ => {}
    }
}

fn exhaustive(p: Llid) {
    match p {
        Llid::Control => {}
        Llid::Start => {}
    }
}

fn foreign_enum_wildcard_is_fine(s: State) {
    match s {
        State::Idle => {}
        _ => {}
    }
}
