//# lint: protocol
//# expect: none

fn graph_outside_arena_consumers_is_unchecked(x: Rc<RefCell<Device>>) {}
