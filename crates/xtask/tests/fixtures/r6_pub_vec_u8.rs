//# lint: general+r6
//# expect: R6@5

pub struct RawFrame {
    pub pdu: Vec<u8>,
    pub crc_init: u32,
}

pub struct Fine {
    pdu: Vec<u8>,
    pub samples: Vec<u16>,
    pub names: Vec<String>,
}

pub fn encode(data: &[u8]) -> Vec<u8> {
    data.to_vec()
}
