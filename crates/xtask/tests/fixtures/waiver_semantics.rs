//# lint: protocol
//# expect: R2@10 R2@13

fn same_line(x: u64) -> u8 { x as u8 } // xtask-allow: R2 — masked upstream

// xtask-allow: R2 — masked upstream
fn line_above(x: u64) -> u8 { x as u8 }

// xtask-allow: R1 — wrong rule: the cast below still fires
fn wrong_rule(x: u64) -> u8 { x as u8 }

// xtask-allow: R1 — unlike R2, this site can never panic
fn rule_in_reason_not_waived(x: u64) -> u8 { x as u8 }
