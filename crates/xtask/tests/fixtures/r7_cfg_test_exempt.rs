//# lint: general+r7
//# expect: none

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_set_never_iterated_by_shipping_code() {
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(1u64));
    }
}

fn live() -> u8 {
    0
}
