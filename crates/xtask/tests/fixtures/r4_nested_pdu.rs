//# lint: protocol
//# expect: R4@6

fn flagged(p: Llid, q: ControlPdu) {
    match p {
        Llid::Control => match q { ControlPdu::PingReq => {} _ => {} },
        Llid::Start => {}
    }
}

fn ok(p: Llid, r: Role) {
    match p {
        Llid::Control => match r { Role::Master => {} _ => {} },
        Llid::Start => {}
    }
}
