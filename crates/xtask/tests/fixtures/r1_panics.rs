//# lint: protocol
//# expect: R1@4 R1@5 R1@6 R1@7 R1@8

fn a() { panic!("boom"); }
fn b() { unreachable!(); }
fn c(x: Option<u8>) { x.unwrap(); }
fn d(x: Option<u8>) { x.expect("set"); }
fn e() { todo!() }
fn ok1(x: Option<u8>) -> u8 { x.unwrap_or(0) }
fn ok2(x: Option<u8>) -> u8 { x.unwrap_or_default() }
fn ok3() -> &'static str { "panic!(x.unwrap())" }
