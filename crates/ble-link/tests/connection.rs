//! End-to-end Link-Layer tests over the simulated radio: advertising,
//! connection establishment, data exchange, acknowledgement, updates,
//! termination, supervision timeout and encryption.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)] // test code may panic freely

use std::collections::VecDeque;

use ble_link::{
    AddressType, ChannelMap, ConnectionParams, DeviceAddress, LinkLayer, LinkLayerDelegate, Llid,
    Role, SleepClockAccuracy, UpdateRequest, ERR_MIC_FAILURE, ERR_REMOTE_USER_TERMINATED,
};
use ble_phy::{Environment, NodeConfig, NodeCtx, Position, RadioEvent, RadioListener, Simulation};
use simkit::{DriftClock, Duration, SimRng};

/// A test host: records callbacks, queues outgoing data, serves an LTK.
#[derive(Default)]
struct TestHost {
    connected: Option<(Role, ConnectionParams, DeviceAddress)>,
    disconnect_reason: Option<u8>,
    received: Vec<(Llid, Vec<u8>)>,
    outgoing: VecDeque<(Llid, Vec<u8>)>,
    encrypted: bool,
    ltk: Option<[u8; 16]>,
    connect_count: usize,
}

impl LinkLayerDelegate for TestHost {
    fn on_connected(&mut self, role: Role, params: &ConnectionParams, peer: DeviceAddress) {
        self.connected = Some((role, *params, peer));
        self.connect_count += 1;
    }
    fn on_disconnected(&mut self, reason: u8) {
        self.connected = None;
        self.disconnect_reason = Some(reason);
    }
    fn on_data(&mut self, llid: Llid, payload: &[u8]) {
        self.received.push((llid, payload.to_vec()));
    }
    fn poll_outgoing(&mut self, out: &mut Vec<u8>) -> Option<Llid> {
        let (llid, payload) = self.outgoing.pop_front()?;
        out.clear();
        out.extend_from_slice(&payload);
        Some(llid)
    }
    fn has_outgoing(&self) -> bool {
        !self.outgoing.is_empty()
    }
    fn on_encryption_change(&mut self, enabled: bool) {
        self.encrypted = enabled;
    }
    fn ltk_lookup(&mut self, _rand: &[u8; 8], _ediv: u16) -> Option<[u8; 16]> {
        self.ltk
    }
}

/// A device = LinkLayer + TestHost wired as a RadioListener.
struct Device {
    ll: LinkLayer,
    host: TestHost,
}

impl RadioListener for Device {
    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        let Device { ll, host } = self;
        ll.handle(ctx, event, host);
    }
}

struct Rig {
    sim: Simulation,
    master_id: ble_phy::NodeId,
    slave_id: ble_phy::NodeId,
}

impl Rig {
    fn master(&self) -> &Device {
        self.sim.node::<Device>(self.master_id).unwrap()
    }
    fn master_mut(&mut self) -> &mut Device {
        self.sim.node_mut::<Device>(self.master_id).unwrap()
    }
    fn slave(&self) -> &Device {
        self.sim.node::<Device>(self.slave_id).unwrap()
    }
    fn slave_mut(&mut self) -> &mut Device {
        self.sim.node_mut::<Device>(self.slave_id).unwrap()
    }
}

fn addr(seed: u8) -> DeviceAddress {
    DeviceAddress::new([seed; 6], AddressType::Public)
}

/// Builds a two-device rig and establishes a connection.
fn connected_rig(seed: u64, hop_interval: u16) -> Rig {
    let mut rng = SimRng::seed_from(seed);
    let mut sim = Simulation::new(Environment::indoor_default(), SimRng::seed_from(seed + 1));
    let slave = Device {
        ll: LinkLayer::new(addr(0xB0), SleepClockAccuracy::Ppm50),
        host: TestHost::default(),
    };
    let master = Device {
        ll: LinkLayer::new(addr(0xA0), SleepClockAccuracy::Ppm50),
        host: TestHost::default(),
    };
    let slave_id = sim.add_node(
        NodeConfig::new("slave", Position::new(0.0, 0.0))
            .with_clock(DriftClock::with_random_error(50.0, &mut rng).with_jitter_us(1.0)),
        slave,
    );
    let master_id = sim.add_node(
        NodeConfig::new("master", Position::new(2.0, 0.0))
            .with_clock(DriftClock::with_random_error(50.0, &mut rng).with_jitter_us(1.0)),
        master,
    );
    let params = ConnectionParams::typical(&mut rng, hop_interval);
    sim.with_node_ctx::<Device, _>(slave_id, |dev, ctx| {
        dev.ll.start_advertising(
            ctx,
            b"\x02\x01\x06".to_vec(),
            vec![],
            Duration::from_millis(60),
        );
    });
    sim.with_node_ctx::<Device, _>(master_id, |dev, ctx| {
        dev.ll.start_initiating(ctx, addr(0xB0), params);
    });
    // Let advertising + connection establishment happen.
    sim.run_for(Duration::from_millis(500));
    Rig {
        sim,
        master_id,
        slave_id,
    }
}

#[test]
fn connection_establishes_in_both_roles() {
    let rig = connected_rig(1, 36);
    let m = rig.master();
    let s = rig.slave();
    let (mr, mp, mpeer) = m.host.connected.as_ref().expect("master connected");
    let (sr, sp, speer) = s.host.connected.as_ref().expect("slave connected");
    assert_eq!(*mr, Role::Master);
    assert_eq!(*sr, Role::Slave);
    assert_eq!(mp.access_address, sp.access_address);
    assert_eq!(mpeer.octets, [0xB0; 6]);
    assert_eq!(speer.octets, [0xA0; 6]);
    assert!(m.ll.is_connected() && s.ll.is_connected());
}

#[test]
fn connection_survives_and_hops_channels() {
    let mut rig = connected_rig(2, 36);
    rig.sim.run_for(Duration::from_secs(5));
    let m = rig.master();
    let s = rig.slave();
    assert!(m.ll.is_connected(), "master alive after 5 s");
    assert!(s.ll.is_connected(), "slave alive after 5 s");
    let mi = m.ll.connection_info().unwrap();
    let si = s.ll.connection_info().unwrap();
    // ~5 s / 45 ms ≈ 111 events + the initial 500 ms.
    assert!(mi.next_event_counter > 100, "{}", mi.next_event_counter);
    // Both sides agree on the event counter (no drift-induced slips).
    assert_eq!(mi.next_event_counter, si.next_event_counter);
    assert_eq!(mi.last_unmapped_channel, si.last_unmapped_channel);
}

#[test]
fn data_flows_in_both_directions_with_acknowledgement() {
    let mut rig = connected_rig(3, 24);
    rig.master_mut()
        .host
        .outgoing
        .push_back((Llid::StartOrComplete, vec![0xAA, 1, 2, 3]));
    rig.slave_mut()
        .host
        .outgoing
        .push_back((Llid::StartOrComplete, vec![0xBB, 9]));
    rig.sim.run_for(Duration::from_millis(500));
    let m = rig.master();
    let s = rig.slave();
    assert!(s
        .host
        .received
        .iter()
        .any(|(_, p)| p == &vec![0xAA, 1, 2, 3]));
    assert!(m.host.received.iter().any(|(_, p)| p == &vec![0xBB, 9]));
    // Nothing delivered twice despite retransmission machinery.
    assert_eq!(
        s.host.received.iter().filter(|(_, p)| p[0] == 0xAA).count(),
        1
    );
}

#[test]
fn many_packets_delivered_in_order_exactly_once() {
    let mut rig = connected_rig(4, 12);
    for i in 0..30u8 {
        rig.master_mut()
            .host
            .outgoing
            .push_back((Llid::StartOrComplete, vec![i, i ^ 0x5A]));
    }
    rig.sim.run_for(Duration::from_secs(3));
    let s = rig.slave();
    let got: Vec<u8> = s.host.received.iter().map(|(_, p)| p[0]).collect();
    assert_eq!(got, (0..30).collect::<Vec<u8>>());
}

#[test]
fn master_initiated_terminate_disconnects_both() {
    let mut rig = connected_rig(5, 36);
    rig.master_mut()
        .ll
        .request_disconnect(ERR_REMOTE_USER_TERMINATED);
    rig.sim.run_for(Duration::from_millis(300));
    let m = rig.master();
    let s = rig.slave();
    assert!(!m.ll.is_connected());
    assert!(!s.ll.is_connected());
    assert_eq!(s.host.disconnect_reason, Some(ERR_REMOTE_USER_TERMINATED));
}

#[test]
fn slave_initiated_terminate_disconnects_both() {
    let mut rig = connected_rig(6, 36);
    rig.slave_mut()
        .ll
        .request_disconnect(ERR_REMOTE_USER_TERMINATED);
    rig.sim.run_for(Duration::from_millis(300));
    assert!(!rig.master().ll.is_connected());
    assert!(!rig.slave().ll.is_connected());
}

#[test]
fn supervision_timeout_fires_when_peer_vanishes() {
    let mut rig = connected_rig(7, 36);
    // Move the master out of radio range: the slave stops hearing anchors.
    rig.sim
        .set_node_position(rig.master_id, Position::new(1.0e7, 0.0));
    rig.sim.run_for(Duration::from_secs(3));
    let m = rig.master();
    let s = rig.slave();
    assert!(!s.ll.is_connected(), "slave must hit supervision timeout");
    assert!(!m.ll.is_connected(), "master must hit supervision timeout");
    assert_eq!(s.host.disconnect_reason, Some(0x08));
}

#[test]
fn connection_update_changes_interval_and_connection_survives() {
    let mut rig = connected_rig(8, 24);
    rig.master_mut().ll.request_connection_update(
        UpdateRequest {
            win_size: 2,
            win_offset: 3,
            interval: 60,
            latency: 0,
            timeout: 200,
        },
        10,
    );
    rig.sim.run_for(Duration::from_secs(4));
    {
        let m = rig.master();
        let s = rig.slave();
        assert!(
            m.ll.is_connected() && s.ll.is_connected(),
            "survives the update"
        );
        let mi = m.ll.connection_info().unwrap();
        let si = s.ll.connection_info().unwrap();
        assert_eq!(mi.params.hop_interval, 60);
        assert_eq!(si.params.hop_interval, 60);
        assert_eq!(mi.next_event_counter, si.next_event_counter);
    }
    // Data still flows after the update.
    rig.master_mut()
        .host
        .outgoing
        .push_back((Llid::StartOrComplete, vec![0x42]));
    rig.sim.run_for(Duration::from_millis(500));
    assert!(rig
        .slave()
        .host
        .received
        .iter()
        .any(|(_, p)| p == &vec![0x42]));
}

#[test]
fn channel_map_update_restricts_hopping() {
    let mut rig = connected_rig(9, 24);
    let map = ChannelMap::from_indices(&[0, 4, 8, 12, 16, 20, 24, 28, 32, 36]);
    rig.master_mut().ll.request_channel_map_update(map, 8);
    rig.sim.run_for(Duration::from_secs(3));
    {
        let m = rig.master();
        let s = rig.slave();
        assert!(
            m.ll.is_connected() && s.ll.is_connected(),
            "survives the map change"
        );
        assert_eq!(m.ll.connection_info().unwrap().params.channel_map, map);
        assert_eq!(s.ll.connection_info().unwrap().params.channel_map, map);
    }
    // Still exchanging data on the narrowed map.
    rig.master_mut()
        .host
        .outgoing
        .push_back((Llid::StartOrComplete, vec![0x77]));
    rig.sim.run_for(Duration::from_millis(500));
    assert!(rig
        .slave()
        .host
        .received
        .iter()
        .any(|(_, p)| p == &vec![0x77]));
}

#[test]
fn encryption_activates_and_data_still_flows() {
    let mut rig = connected_rig(10, 24);
    let ltk = [0x4C; 16];
    rig.slave_mut().host.ltk = Some(ltk);
    rig.sim
        .with_node_ctx::<Device, _>(rig.master_id, |dev, ctx| {
            dev.ll.request_encryption(ctx, ltk, [7; 8], 0x1234);
        });
    rig.sim.run_for(Duration::from_secs(2));
    assert!(rig.master().host.encrypted, "master reports encryption");
    assert!(rig.slave().host.encrypted, "slave reports encryption");
    rig.master_mut()
        .host
        .outgoing
        .push_back((Llid::StartOrComplete, b"secret payload".to_vec()));
    rig.slave_mut()
        .host
        .outgoing
        .push_back((Llid::StartOrComplete, b"secret reply".to_vec()));
    rig.sim.run_for(Duration::from_secs(1));
    assert!(rig
        .slave()
        .host
        .received
        .iter()
        .any(|(_, p)| p == b"secret payload"));
    assert!(rig
        .master()
        .host
        .received
        .iter()
        .any(|(_, p)| p == b"secret reply"));
    assert!(rig.master().ll.connection_info().unwrap().encrypted);
}

#[test]
fn encryption_rejected_without_ltk() {
    let mut rig = connected_rig(11, 24);
    // Slave has no LTK: procedure is rejected, connection stays plaintext.
    rig.sim
        .with_node_ctx::<Device, _>(rig.master_id, |dev, ctx| {
            dev.ll.request_encryption(ctx, [1; 16], [7; 8], 0x1234);
        });
    rig.sim.run_for(Duration::from_secs(2));
    assert!(!rig.slave().host.encrypted);
    assert!(
        rig.slave().ll.is_connected(),
        "connection survives rejection"
    );
}

#[test]
fn sequence_numbers_track_between_peers() {
    let mut rig = connected_rig(12, 36);
    rig.sim.run_for(Duration::from_secs(1));
    let m = rig.master();
    let s = rig.slave();
    let mi = m.ll.connection_info().unwrap();
    let si = s.ll.connection_info().unwrap();
    // SN/NESN algebra: at most one direction may have an unacknowledged
    // frame in flight; both directions desynchronised is impossible.
    let master_dir_synced = mi.sn == si.nesn;
    let slave_dir_synced = si.sn == mi.nesn;
    assert!(
        master_dir_synced || slave_dir_synced,
        "both directions desynchronised: {mi:?} vs {si:?}"
    );
}

#[test]
fn mic_failure_terminates_encrypted_connection() {
    // Encrypt, then corrupt the slave's session by feeding it a frame the
    // master never encrypted — emulated by desynchronising ciphers via a
    // second plaintext-era master... simplest check: after encryption is on,
    // an attacker-style plaintext data PDU injected at the slave causes
    // disconnection. Covered end-to-end in the injectable crate; here we
    // assert the encrypted link itself stays healthy over time instead.
    let mut rig = connected_rig(13, 24);
    let ltk = [0x4C; 16];
    rig.slave_mut().host.ltk = Some(ltk);
    rig.sim
        .with_node_ctx::<Device, _>(rig.master_id, |dev, ctx| {
            dev.ll.request_encryption(ctx, ltk, [7; 8], 0x1234);
        });
    for i in 0..20u8 {
        rig.master_mut()
            .host
            .outgoing
            .push_back((Llid::StartOrComplete, vec![i; 8]));
    }
    rig.sim.run_for(Duration::from_secs(4));
    let s = rig.slave();
    assert!(s.ll.is_connected());
    assert_eq!(s.host.received.len(), 20, "all encrypted PDUs delivered");
    let _ = ERR_MIC_FAILURE; // exercised in injectable's countermeasure test
}

#[test]
fn rig_is_deterministic_per_seed() {
    let a = connected_rig(14, 36);
    let b = connected_rig(14, 36);
    let ia = a.master().ll.connection_info().unwrap();
    let ib = b.master().ll.connection_info().unwrap();
    assert_eq!(ia.next_event_counter, ib.next_event_counter);
    assert_eq!(ia.last_anchor, ib.last_anchor);
    assert_eq!(ia.params.access_address, ib.params.access_address);
    let _ = (a.slave_id, b.slave_id);
}

#[test]
fn slave_latency_skips_events_but_connection_survives() {
    // Build a rig whose connection uses slave latency 3: the slave listens
    // roughly every 4th event while idle, and wakes up as soon as data
    // appears.
    let mut rng = SimRng::seed_from(40);
    let mut sim = Simulation::new(Environment::indoor_default(), SimRng::seed_from(41));
    let slave = Device {
        ll: LinkLayer::new(addr(0xB0), SleepClockAccuracy::Ppm50),
        host: TestHost::default(),
    };
    let master = Device {
        ll: LinkLayer::new(addr(0xA0), SleepClockAccuracy::Ppm50),
        host: TestHost::default(),
    };
    let slave_id = sim.add_node(
        NodeConfig::new("slave", Position::new(0.0, 0.0))
            .with_clock(DriftClock::realistic(50.0, &mut rng).with_jitter_us(1.0)),
        slave,
    );
    let master_id = sim.add_node(
        NodeConfig::new("master", Position::new(2.0, 0.0))
            .with_clock(DriftClock::realistic(50.0, &mut rng).with_jitter_us(1.0)),
        master,
    );
    let mut params = ConnectionParams::typical(&mut rng, 24);
    params.latency = 3;
    params.timeout = 300; // supervision must cover latency × interval
    sim.with_node_ctx::<Device, _>(slave_id, |dev, ctx| {
        dev.ll
            .start_advertising(ctx, vec![1], vec![], Duration::from_millis(60));
    });
    sim.with_node_ctx::<Device, _>(master_id, |dev, ctx| {
        dev.ll.start_initiating(ctx, addr(0xB0), params);
    });
    sim.run_for(Duration::from_secs(6));
    assert!(
        sim.node::<Device>(master_id).unwrap().ll.is_connected(),
        "connection survives latency"
    );
    assert!(sim.node::<Device>(slave_id).unwrap().ll.is_connected());

    // Data still flows (slave wakes up to receive retransmissions and to
    // send its own data).
    sim.node_mut::<Device>(master_id)
        .unwrap()
        .host
        .outgoing
        .push_back((Llid::StartOrComplete, vec![0xEE, 1]));
    sim.node_mut::<Device>(slave_id)
        .unwrap()
        .host
        .outgoing
        .push_back((Llid::StartOrComplete, vec![0xDD, 2]));
    sim.run_for(Duration::from_secs(3));
    assert!(sim
        .node::<Device>(slave_id)
        .unwrap()
        .host
        .received
        .iter()
        .any(|(_, p)| p == &vec![0xEE, 1]));
    assert!(sim
        .node::<Device>(master_id)
        .unwrap()
        .host
        .received
        .iter()
        .any(|(_, p)| p == &vec![0xDD, 2]));
}

#[test]
fn ll_control_procedures_are_span_profiled() {
    use ble_telemetry::{MetricsSink, SpanKind};
    let mut rig = connected_rig(9, 36);
    let sink = MetricsSink::new();
    let registry = sink.handle();
    rig.sim.add_telemetry_sink(Box::new(sink));
    // A control procedure on each side: the update travels master→slave,
    // the terminate slave→master.
    rig.master_mut().ll.request_connection_update(
        UpdateRequest {
            win_size: 2,
            win_offset: 3,
            interval: 60,
            latency: 0,
            timeout: 200,
        },
        10,
    );
    rig.sim.run_for(Duration::from_secs(2));
    rig.slave_mut()
        .ll
        .request_disconnect(ERR_REMOTE_USER_TERMINATED);
    rig.sim.run_for(Duration::from_millis(300));
    assert!(!rig.master().ll.is_connected());
    rig.sim.flush_telemetry();
    let reg = registry.lock();
    let names = SpanKind::LlProcedure.metric_names();
    assert!(
        reg.counter(names.count) >= 2,
        "connection update + terminate must both close an ll-procedure span, \
         got {}",
        reg.counter(names.count)
    );
    // Control handling consumes no simulated time: the span prices the
    // handler's wall cost only.
    assert_eq!(reg.counter(names.sim_ns), 0);
}
