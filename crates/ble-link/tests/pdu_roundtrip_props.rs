//! Property tests: every Link-Layer PDU must survive a serialize→parse
//! round trip bit-for-bit.
//!
//! These run in debug mode, so the `ble_invariants` macros wired through
//! the serialization helpers (`lsb8`, `len_u8`, …) are armed: a property
//! completing without a panic also certifies no invariant fired.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)] // test code may panic freely

use ble_link::pdu::ParseError;
use ble_link::{
    AddressType, AdvertisingPdu, ChannelMap, ConnectionParams, ControlPdu, DataPdu, DeviceAddress,
    Llid, SleepClockAccuracy,
};
use ble_phy::AccessAddress;
use proptest::collection::vec;
use proptest::prelude::*;

fn any_address() -> impl Strategy<Value = DeviceAddress> {
    (any::<[u8; 6]>(), any::<bool>()).prop_map(|(octets, random)| {
        let kind = if random {
            AddressType::Random
        } else {
            AddressType::Public
        };
        DeviceAddress::new(octets, kind)
    })
}

fn any_llid() -> impl Strategy<Value = Llid> {
    (0u8..3).prop_map(|v| match v {
        0 => Llid::ContinuationOrEmpty,
        1 => Llid::StartOrComplete,
        _ => Llid::Control,
    })
}

fn any_channel_map() -> impl Strategy<Value = ChannelMap> {
    any::<[u8; 5]>()
        .prop_map(ChannelMap::from_bytes)
        .prop_filter("need at least one data channel", |m| m.used_count() > 0)
}

fn any_connection_params() -> impl Strategy<Value = ConnectionParams> {
    (
        (any::<u32>(), 0u32..0x100_0000, any::<u8>(), any::<u16>()),
        (6u16..3200, any::<u16>(), any::<u16>()),
        (any_channel_map(), 5u8..17, 0u8..8),
    )
        .prop_map(
            |(
                (aa, crc_init, win_size, win_offset),
                (hop_interval, latency, timeout),
                (channel_map, hop_increment, sca),
            )| ConnectionParams {
                access_address: AccessAddress::new(aa),
                crc_init,
                win_size,
                win_offset,
                hop_interval,
                latency,
                timeout,
                channel_map,
                hop_increment,
                master_sca: SleepClockAccuracy::from_field(sca),
            },
        )
}

fn any_control_pdu() -> impl Strategy<Value = ControlPdu> {
    prop_oneof![
        (
            any::<u8>(),
            any::<u16>(),
            any::<u16>(),
            any::<u16>(),
            any::<u16>(),
            any::<u16>()
        )
            .prop_map(
                |(win_size, win_offset, interval, latency, timeout, instant)| {
                    ControlPdu::ConnectionUpdateInd {
                        win_size,
                        win_offset,
                        interval,
                        latency,
                        timeout,
                        instant,
                    }
                }
            ),
        (any_channel_map(), any::<u16>()).prop_map(|(channel_map, instant)| {
            ControlPdu::ChannelMapInd {
                channel_map,
                instant,
            }
        }),
        any::<u8>().prop_map(|error_code| ControlPdu::TerminateInd { error_code }),
        (
            any::<[u8; 8]>(),
            any::<u16>(),
            any::<[u8; 8]>(),
            any::<[u8; 4]>()
        )
            .prop_map(|(rand, ediv, skd_m, iv_m)| ControlPdu::EncReq {
                rand,
                ediv,
                skd_m,
                iv_m
            }),
        (any::<[u8; 8]>(), any::<[u8; 4]>())
            .prop_map(|(skd_s, iv_s)| ControlPdu::EncRsp { skd_s, iv_s }),
        Just(ControlPdu::StartEncReq),
        Just(ControlPdu::StartEncRsp),
        any::<u8>().prop_map(|unknown_type| ControlPdu::UnknownRsp { unknown_type }),
        any::<[u8; 8]>().prop_map(|features| ControlPdu::FeatureReq { features }),
        any::<[u8; 8]>().prop_map(|features| ControlPdu::FeatureRsp { features }),
        (any::<u8>(), any::<u16>(), any::<u16>()).prop_map(|(version, company, subversion)| {
            ControlPdu::VersionInd {
                version,
                company,
                subversion,
            }
        }),
        any::<u8>().prop_map(|error_code| ControlPdu::RejectInd { error_code }),
        Just(ControlPdu::PingReq),
        Just(ControlPdu::PingRsp),
    ]
}

fn any_advertising_pdu() -> impl Strategy<Value = AdvertisingPdu> {
    prop_oneof![
        (any_address(), vec(any::<u8>(), 0..32))
            .prop_map(|(advertiser, data)| AdvertisingPdu::AdvInd { advertiser, data }),
        (any_address(), vec(any::<u8>(), 0..32))
            .prop_map(|(advertiser, data)| AdvertisingPdu::AdvNonconnInd { advertiser, data }),
        (any_address(), any_address()).prop_map(|(scanner, advertiser)| AdvertisingPdu::ScanReq {
            scanner,
            advertiser
        }),
        (any_address(), vec(any::<u8>(), 0..32))
            .prop_map(|(advertiser, data)| AdvertisingPdu::ScanRsp { advertiser, data }),
        (
            any_address(),
            any_address(),
            any_connection_params(),
            any::<bool>()
        )
            .prop_map(|(initiator, advertiser, params, ch_sel)| {
                AdvertisingPdu::ConnectReq {
                    initiator,
                    advertiser,
                    params,
                    ch_sel,
                }
            }),
    ]
}

proptest! {
    #[test]
    fn data_pdu_roundtrips(
        llid in any_llid(),
        nesn in any::<bool>(),
        sn in any::<bool>(),
        md in any::<bool>(),
        payload in vec(any::<u8>(), 0..64),
    ) {
        let pdu = DataPdu::new(llid, nesn, sn, md, payload);
        let bytes = pdu.to_bytes();
        let parsed = DataPdu::from_bytes(&bytes).expect("serialized PDU must parse");
        prop_assert_eq!(parsed, pdu);
    }

    #[test]
    fn control_pdu_roundtrips(ctrl in any_control_pdu()) {
        let bytes = ctrl.to_bytes();
        let parsed = ControlPdu::from_bytes(&bytes).expect("serialized PDU must parse");
        prop_assert_eq!(parsed, ctrl);
    }

    #[test]
    fn advertising_pdu_roundtrips(adv in any_advertising_pdu()) {
        let bytes = adv.to_bytes();
        let parsed = AdvertisingPdu::from_bytes(&bytes).expect("serialized PDU must parse");
        prop_assert_eq!(parsed, adv);
    }

    #[test]
    fn connection_params_roundtrip(params in any_connection_params()) {
        let bytes = params.to_bytes();
        prop_assert_eq!(bytes.len(), ConnectionParams::ENCODED_LEN);
        let parsed = ConnectionParams::from_bytes(&bytes).expect("22 bytes must parse");
        prop_assert_eq!(parsed, params);
    }

    #[test]
    fn truncated_data_pdu_is_a_typed_error(
        llid in any_llid(),
        payload in vec(any::<u8>(), 1..32),
    ) {
        let pdu = DataPdu::new(llid, false, false, false, payload);
        let bytes = pdu.to_bytes();
        for cut in 0..bytes.len() {
            let err = DataPdu::from_bytes(&bytes[..cut])
                .expect_err("truncation must be rejected");
            prop_assert!(
                matches!(err, ParseError::Truncated { .. } | ParseError::LengthMismatch { .. }),
                "unexpected error {err:?} at cut {cut}"
            );
        }
    }

    #[test]
    fn control_parse_never_panics_on_random_bytes(bytes in vec(any::<u8>(), 0..40)) {
        // Any byte soup must produce Ok or a typed error — never a panic.
        let _ = ControlPdu::from_bytes(&bytes);
        let _ = AdvertisingPdu::from_bytes(&bytes);
        let _ = DataPdu::from_bytes(&bytes);
    }
}
