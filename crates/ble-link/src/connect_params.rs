//! Connection parameters — the `LL Data` portion of `CONNECT_REQ`
//! (paper Table II).

use ble_phy::AccessAddress;
use simkit::{Duration, SimRng};

use crate::channel_map::ChannelMap;
use crate::sca::SleepClockAccuracy;
use crate::timing;

/// The parameters a `CONNECT_REQ` establishes for a connection
/// (paper Table II, after the two device addresses).
///
/// Over-the-air layout (22 bytes, little-endian fields):
/// `AA(4) CRCInit(3) WinSize(1) WinOffset(2) Interval(2) Latency(2)
/// Timeout(2) ChannelMap(5) Hop(5 bits)+SCA(3 bits)`.
///
/// # Example
///
/// ```
/// use ble_link::ConnectionParams;
/// use simkit::SimRng;
/// let mut rng = SimRng::seed_from(7);
/// let params = ConnectionParams::typical(&mut rng, 36);
/// let bytes = params.to_bytes();
/// assert_eq!(bytes.len(), 22);
/// assert_eq!(ConnectionParams::from_bytes(&bytes).unwrap(), params);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionParams {
    /// The connection's access address.
    pub access_address: AccessAddress,
    /// CRC initialisation value (24 bits).
    pub crc_init: u32,
    /// Transmit window size, ×1.25 ms.
    pub win_size: u8,
    /// Transmit window offset, ×1.25 ms.
    pub win_offset: u16,
    /// Connection ("hop") interval, ×1.25 ms. Valid range 6–3200.
    pub hop_interval: u16,
    /// Slave latency: connection events the slave may skip.
    pub latency: u16,
    /// Supervision timeout, ×10 ms.
    pub timeout: u16,
    /// The data channel map.
    pub channel_map: ChannelMap,
    /// Channel-selection hop increment (5 bits, valid range 5–16).
    pub hop_increment: u8,
    /// The master's advertised sleep clock accuracy.
    pub master_sca: SleepClockAccuracy,
}

impl ConnectionParams {
    /// Encoded length in bytes.
    pub const ENCODED_LEN: usize = 22;

    /// A typical parameter set with a random access address, CRC init and
    /// hop increment — what a phone-like Central would send.
    pub fn typical(rng: &mut SimRng, hop_interval: u16) -> Self {
        ConnectionParams {
            access_address: AccessAddress::random_for_data(rng),
            crc_init: ble_invariants::lsb32(rng.below(1 << 24)),
            win_size: 2,
            win_offset: 1,
            hop_interval,
            latency: 0,
            // ≥ 1 s, and at least ~8 connection intervals at large hop
            // intervals (field unit 10 ms; interval unit 1.25 ms).
            timeout: 100u16.max(hop_interval),
            channel_map: ChannelMap::ALL,
            hop_increment: ble_invariants::lsb8(5 + rng.below(12)),
            master_sca: SleepClockAccuracy::Ppm50,
        }
    }

    /// The connection interval as a duration.
    pub fn interval(&self) -> Duration {
        timing::connection_interval(self.hop_interval)
    }

    /// The supervision timeout as a duration.
    pub fn supervision_timeout(&self) -> Duration {
        timing::supervision_timeout(self.timeout)
    }

    /// Serialises to the 22-byte over-the-air layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::ENCODED_LEN);
        out.extend_from_slice(&self.access_address.to_le_bytes());
        out.extend_from_slice(&self.crc_init.to_le_bytes()[..3]);
        out.push(self.win_size);
        out.extend_from_slice(&self.win_offset.to_le_bytes());
        out.extend_from_slice(&self.hop_interval.to_le_bytes());
        out.extend_from_slice(&self.latency.to_le_bytes());
        out.extend_from_slice(&self.timeout.to_le_bytes());
        out.extend_from_slice(&self.channel_map.to_bytes());
        out.push((self.hop_increment & 0x1F) | (self.master_sca.field() << 5));
        out
    }

    /// Parses the 22-byte over-the-air layout; `None` if truncated.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let &[a0, a1, a2, a3, c0, c1, c2, win_size, wo0, wo1, i0, i1, l0, l1, t0, t1, m0, m1, m2, m3, m4, hop_sca] =
            bytes.get(..Self::ENCODED_LEN)?
        else {
            return None;
        };
        let access_address = AccessAddress::from_le_bytes([a0, a1, a2, a3]);
        let crc_init = u32::from(c0) | u32::from(c1) << 8 | u32::from(c2) << 16;
        let win_offset = u16::from_le_bytes([wo0, wo1]);
        let hop_interval = u16::from_le_bytes([i0, i1]);
        let latency = u16::from_le_bytes([l0, l1]);
        let timeout = u16::from_le_bytes([t0, t1]);
        let channel_map = ChannelMap::from_bytes([m0, m1, m2, m3, m4]);
        let hop_increment = hop_sca & 0x1F;
        let master_sca = SleepClockAccuracy::from_field(hop_sca >> 5);
        Some(ConnectionParams {
            access_address,
            crc_init,
            win_size,
            win_offset,
            hop_interval,
            latency,
            timeout,
            channel_map,
            hop_increment,
            master_sca,
        })
    }

    /// Whether the parameters satisfy the specification's validity ranges.
    pub fn is_valid(&self) -> bool {
        (6..=3200).contains(&self.hop_interval)
            && (5..=16).contains(&self.hop_increment)
            && self.access_address.is_valid_for_data()
            && self.channel_map.is_valid()
            && self.win_size >= 1
            && u16::from(self.win_size) <= self.hop_interval.saturating_sub(1).max(1)
            && self.crc_init <= 0xFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rng_seed: u64) -> ConnectionParams {
        let mut rng = SimRng::seed_from(rng_seed);
        ConnectionParams::typical(&mut rng, 75)
    }

    #[test]
    fn roundtrip_many() {
        for seed in 0..50 {
            let p = sample(seed);
            let bytes = p.to_bytes();
            assert_eq!(bytes.len(), ConnectionParams::ENCODED_LEN);
            assert_eq!(
                ConnectionParams::from_bytes(&bytes).unwrap(),
                p,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn typical_params_are_valid() {
        for seed in 0..50 {
            assert!(sample(seed).is_valid());
        }
    }

    #[test]
    fn truncated_rejected() {
        let p = sample(1);
        let bytes = p.to_bytes();
        assert!(ConnectionParams::from_bytes(&bytes[..21]).is_none());
    }

    #[test]
    fn hop_and_sca_share_final_byte() {
        let mut p = sample(2);
        p.hop_increment = 0x1F;
        p.master_sca = SleepClockAccuracy::Ppm20;
        let bytes = p.to_bytes();
        assert_eq!(bytes[21], 0x1F | (7 << 5));
        let parsed = ConnectionParams::from_bytes(&bytes).unwrap();
        assert_eq!(parsed.hop_increment, 0x1F);
        assert_eq!(parsed.master_sca, SleepClockAccuracy::Ppm20);
    }

    #[test]
    fn validity_rules() {
        let mut p = sample(3);
        assert!(p.is_valid());
        p.hop_interval = 5;
        assert!(!p.is_valid());
        p.hop_interval = 3300;
        assert!(!p.is_valid());
        let mut p = sample(3);
        p.hop_increment = 4;
        assert!(!p.is_valid());
        let mut p = sample(3);
        p.channel_map = ChannelMap::from_indices(&[4]);
        assert!(!p.is_valid());
    }

    #[test]
    fn interval_durations() {
        let p = sample(4);
        assert_eq!(p.interval().as_micros(), 75 * 1250);
        assert_eq!(p.supervision_timeout().as_micros(), 1_000_000);
    }
}
