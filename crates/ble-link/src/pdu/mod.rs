//! Link-Layer PDU encodings.
//!
//! Three PDU families matter to the InjectaBLE reproduction:
//!
//! * [`advertising`] — broadcast PDUs on channels 37–39, including
//!   `CONNECT_REQ` (paper Table II), which the sniffer captures to recover
//!   all connection parameters;
//! * [`data`] — connected-mode data PDUs whose header carries the SN/NESN
//!   acknowledgement bits the attacker must forge (paper eq. 6) and observe
//!   (paper eq. 7);
//! * [`control`] — LL control PDUs: `LL_TERMINATE_IND` (scenario B),
//!   `LL_CONNECTION_UPDATE_IND` (scenarios C/D), `LL_CHANNEL_MAP_IND`,
//!   the encryption-start family, and the housekeeping opcodes.

pub mod advertising;
pub mod control;
pub mod data;

/// Error produced when PDU bytes cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PduError {
    /// Human-readable description of the malformation.
    pub reason: String,
}

impl PduError {
    pub(crate) fn new(reason: impl Into<String>) -> Self {
        PduError { reason: reason.into() }
    }
}

impl std::fmt::Display for PduError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed PDU: {}", self.reason)
    }
}

impl std::error::Error for PduError {}
