//! Link-Layer PDU encodings.
//!
//! Three PDU families matter to the InjectaBLE reproduction:
//!
//! * [`advertising`] — broadcast PDUs on channels 37–39, including
//!   `CONNECT_REQ` (paper Table II), which the sniffer captures to recover
//!   all connection parameters;
//! * [`data`] — connected-mode data PDUs whose header carries the SN/NESN
//!   acknowledgement bits the attacker must forge (paper eq. 6) and observe
//!   (paper eq. 7);
//! * [`control`] — LL control PDUs: `LL_TERMINATE_IND` (scenario B),
//!   `LL_CONNECTION_UPDATE_IND` (scenarios C/D), `LL_CHANNEL_MAP_IND`,
//!   the encryption-start family, and the housekeeping opcodes.

pub mod advertising;
pub mod control;
pub mod data;

/// Error produced when PDU bytes cannot be parsed.
///
/// Every variant is a distinct malformation class, so callers (and tests)
/// can match on *why* a frame was rejected instead of string-comparing a
/// message — the sniffer treats a [`ParseError::UnknownOpcode`] very
/// differently from a truncated frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Fewer bytes than the named field/structure requires.
    Truncated {
        /// What was being read when the input ran out.
        field: &'static str,
        /// Minimum number of bytes the field needs.
        expected: usize,
        /// Number of bytes actually available.
        got: usize,
    },
    /// The header's length field disagrees with the bytes on the wire.
    LengthMismatch {
        /// Length the header declares.
        declared: usize,
        /// Length actually present.
        actual: usize,
    },
    /// The reserved LLID encoding `0b00`.
    ReservedLlid,
    /// An LL control opcode this implementation does not model.
    UnknownOpcode(u8),
    /// An advertising PDU type this implementation does not model.
    UnknownAdvType(u8),
    /// A field with a structurally valid length but an invalid value.
    InvalidField(&'static str),
}

/// Backwards-compatible name: the original stringly error this enum
/// replaced.
pub type PduError = ParseError;

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated {
                field,
                expected,
                got,
            } => write!(
                f,
                "malformed PDU: {field} truncated (need {expected} bytes, got {got})"
            ),
            ParseError::LengthMismatch { declared, actual } => write!(
                f,
                "malformed PDU: length field declares {declared} bytes but {actual} present"
            ),
            ParseError::ReservedLlid => write!(f, "malformed PDU: reserved LLID 0b00"),
            ParseError::UnknownOpcode(op) => {
                write!(f, "malformed PDU: unknown control opcode 0x{op:02X}")
            }
            ParseError::UnknownAdvType(ty) => {
                write!(
                    f,
                    "malformed PDU: unsupported advertising PDU type 0x{ty:X}"
                )
            }
            ParseError::InvalidField(field) => write!(f, "malformed PDU: invalid {field}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Reads a fixed-size array at `offset`, or reports what was missing.
///
/// The `try_into().expect(..)` idiom this replaces was a rule-R1 violation:
/// it relied on an earlier length check staying in sync with the slice
/// bounds. Here the bounds check and the array conversion are one fallible
/// operation.
pub(crate) fn take<const N: usize>(
    bytes: &[u8],
    offset: usize,
    field: &'static str,
) -> Result<[u8; N], ParseError> {
    bytes
        .get(offset..offset.saturating_add(N))
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or(ParseError::Truncated {
            field,
            expected: offset.saturating_add(N),
            got: bytes.len(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reads_arrays_and_reports_truncation() {
        let bytes = [1u8, 2, 3, 4, 5];
        assert_eq!(take::<2>(&bytes, 1, "field"), Ok([2, 3]));
        assert_eq!(take::<5>(&bytes, 0, "field"), Ok([1, 2, 3, 4, 5]));
        assert_eq!(
            take::<4>(&bytes, 3, "field"),
            Err(ParseError::Truncated {
                field: "field",
                expected: 7,
                got: 5
            })
        );
        // Offset overflow must not panic.
        assert!(take::<4>(&bytes, usize::MAX, "field").is_err());
    }

    #[test]
    fn display_messages_name_the_malformation() {
        let cases: [(ParseError, &str); 6] = [
            (
                ParseError::Truncated {
                    field: "header",
                    expected: 2,
                    got: 1,
                },
                "header truncated",
            ),
            (
                ParseError::LengthMismatch {
                    declared: 5,
                    actual: 3,
                },
                "declares 5",
            ),
            (ParseError::ReservedLlid, "reserved LLID"),
            (ParseError::UnknownOpcode(0xFF), "0xFF"),
            (ParseError::UnknownAdvType(0x9), "0x9"),
            (ParseError::InvalidField("interval"), "invalid interval"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }
}
