//! LL control PDUs (Core Spec Vol 6 Part B §2.4.2).
//!
//! These are the attack's favourite payloads: `LL_TERMINATE_IND` evicts the
//! Slave (scenario B), `LL_CONNECTION_UPDATE_IND` desynchronises the Master
//! from the Slave (scenarios C/D), and the `LL_ENC_*` family carries the
//! encryption-start procedure exercised by the countermeasure experiments.

use crate::channel_map::ChannelMap;
use crate::pdu::{take, ParseError};

/// A decoded LL control PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlPdu {
    /// `LL_CONNECTION_UPDATE_IND` (0x00): new timing parameters taking
    /// effect at `instant`.
    ConnectionUpdateInd {
        /// New transmit window size, ×1.25 ms.
        win_size: u8,
        /// New transmit window offset, ×1.25 ms.
        win_offset: u16,
        /// New connection interval, ×1.25 ms.
        interval: u16,
        /// New slave latency.
        latency: u16,
        /// New supervision timeout, ×10 ms.
        timeout: u16,
        /// Connection event counter at which the update applies.
        instant: u16,
    },
    /// `LL_CHANNEL_MAP_IND` (0x01): new channel map at `instant`.
    ChannelMapInd {
        /// The new channel map.
        channel_map: ChannelMap,
        /// Connection event counter at which the map applies.
        instant: u16,
    },
    /// `LL_TERMINATE_IND` (0x02).
    TerminateInd {
        /// HCI error code explaining the termination.
        error_code: u8,
    },
    /// `LL_ENC_REQ` (0x03).
    EncReq {
        /// Random value identifying the LTK (paired with `ediv`).
        rand: [u8; 8],
        /// Encrypted diversifier.
        ediv: u16,
        /// Master's session key diversifier half.
        skd_m: [u8; 8],
        /// Master's IV half.
        iv_m: [u8; 4],
    },
    /// `LL_ENC_RSP` (0x04).
    EncRsp {
        /// Slave's session key diversifier half.
        skd_s: [u8; 8],
        /// Slave's IV half.
        iv_s: [u8; 4],
    },
    /// `LL_START_ENC_REQ` (0x05).
    StartEncReq,
    /// `LL_START_ENC_RSP` (0x06).
    StartEncRsp,
    /// `LL_UNKNOWN_RSP` (0x07).
    UnknownRsp {
        /// The opcode that was not understood.
        unknown_type: u8,
    },
    /// `LL_FEATURE_REQ` (0x08).
    FeatureReq {
        /// Feature bitmask.
        features: [u8; 8],
    },
    /// `LL_FEATURE_RSP` (0x09).
    FeatureRsp {
        /// Feature bitmask.
        features: [u8; 8],
    },
    /// `LL_VERSION_IND` (0x0C).
    VersionInd {
        /// Link-layer version number.
        version: u8,
        /// Company identifier.
        company: u16,
        /// Implementation subversion.
        subversion: u16,
    },
    /// `LL_REJECT_IND` (0x0D).
    RejectInd {
        /// HCI error code.
        error_code: u8,
    },
    /// `LL_PING_REQ` (0x12).
    PingReq,
    /// `LL_PING_RSP` (0x13).
    PingRsp,
}

impl ControlPdu {
    /// The control opcode.
    pub fn opcode(&self) -> u8 {
        match self {
            ControlPdu::ConnectionUpdateInd { .. } => 0x00,
            ControlPdu::ChannelMapInd { .. } => 0x01,
            ControlPdu::TerminateInd { .. } => 0x02,
            ControlPdu::EncReq { .. } => 0x03,
            ControlPdu::EncRsp { .. } => 0x04,
            ControlPdu::StartEncReq => 0x05,
            ControlPdu::StartEncRsp => 0x06,
            ControlPdu::UnknownRsp { .. } => 0x07,
            ControlPdu::FeatureReq { .. } => 0x08,
            ControlPdu::FeatureRsp { .. } => 0x09,
            ControlPdu::VersionInd { .. } => 0x0C,
            ControlPdu::RejectInd { .. } => 0x0D,
            ControlPdu::PingReq => 0x12,
            ControlPdu::PingRsp => 0x13,
        }
    }

    /// Serialises to a control payload (opcode + CtrData).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![self.opcode()];
        match self {
            ControlPdu::ConnectionUpdateInd {
                win_size,
                win_offset,
                interval,
                latency,
                timeout,
                instant,
            } => {
                out.push(*win_size);
                out.extend_from_slice(&win_offset.to_le_bytes());
                out.extend_from_slice(&interval.to_le_bytes());
                out.extend_from_slice(&latency.to_le_bytes());
                out.extend_from_slice(&timeout.to_le_bytes());
                out.extend_from_slice(&instant.to_le_bytes());
            }
            ControlPdu::ChannelMapInd {
                channel_map,
                instant,
            } => {
                out.extend_from_slice(&channel_map.to_bytes());
                out.extend_from_slice(&instant.to_le_bytes());
            }
            ControlPdu::TerminateInd { error_code } | ControlPdu::RejectInd { error_code } => {
                out.push(*error_code);
            }
            ControlPdu::EncReq {
                rand,
                ediv,
                skd_m,
                iv_m,
            } => {
                out.extend_from_slice(rand);
                out.extend_from_slice(&ediv.to_le_bytes());
                out.extend_from_slice(skd_m);
                out.extend_from_slice(iv_m);
            }
            ControlPdu::EncRsp { skd_s, iv_s } => {
                out.extend_from_slice(skd_s);
                out.extend_from_slice(iv_s);
            }
            ControlPdu::StartEncReq
            | ControlPdu::StartEncRsp
            | ControlPdu::PingReq
            | ControlPdu::PingRsp => {}
            ControlPdu::UnknownRsp { unknown_type } => out.push(*unknown_type),
            ControlPdu::FeatureReq { features } | ControlPdu::FeatureRsp { features } => {
                out.extend_from_slice(features)
            }
            ControlPdu::VersionInd {
                version,
                company,
                subversion,
            } => {
                out.push(*version);
                out.extend_from_slice(&company.to_le_bytes());
                out.extend_from_slice(&subversion.to_le_bytes());
            }
        }
        out
    }

    /// Parses a control payload.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on truncation, trailing bytes or an opcode
    /// this implementation does not know.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ParseError> {
        let (&opcode, data) = bytes.split_first().ok_or(ParseError::Truncated {
            field: "control opcode",
            expected: 1,
            got: 0,
        })?;
        let expect_len = |n: usize| -> Result<(), ParseError> {
            if data.len() == n {
                Ok(())
            } else {
                Err(ParseError::LengthMismatch {
                    declared: n,
                    actual: data.len(),
                })
            }
        };
        match opcode {
            0x00 => {
                expect_len(11)?;
                let [win_size, wo0, wo1, i0, i1, l0, l1, t0, t1, n0, n1] =
                    take::<11>(data, 0, "LL_CONNECTION_UPDATE_IND")?;
                Ok(ControlPdu::ConnectionUpdateInd {
                    win_size,
                    win_offset: u16::from_le_bytes([wo0, wo1]),
                    interval: u16::from_le_bytes([i0, i1]),
                    latency: u16::from_le_bytes([l0, l1]),
                    timeout: u16::from_le_bytes([t0, t1]),
                    instant: u16::from_le_bytes([n0, n1]),
                })
            }
            0x01 => {
                expect_len(7)?;
                Ok(ControlPdu::ChannelMapInd {
                    channel_map: ChannelMap::from_bytes(take::<5>(
                        data,
                        0,
                        "LL_CHANNEL_MAP_IND map",
                    )?),
                    instant: u16::from_le_bytes(take::<2>(data, 5, "LL_CHANNEL_MAP_IND instant")?),
                })
            }
            0x02 => {
                expect_len(1)?;
                let [error_code] = take::<1>(data, 0, "LL_TERMINATE_IND")?;
                Ok(ControlPdu::TerminateInd { error_code })
            }
            0x03 => {
                expect_len(22)?;
                Ok(ControlPdu::EncReq {
                    rand: take::<8>(data, 0, "LL_ENC_REQ rand")?,
                    ediv: u16::from_le_bytes(take::<2>(data, 8, "LL_ENC_REQ ediv")?),
                    skd_m: take::<8>(data, 10, "LL_ENC_REQ skd_m")?,
                    iv_m: take::<4>(data, 18, "LL_ENC_REQ iv_m")?,
                })
            }
            0x04 => {
                expect_len(12)?;
                Ok(ControlPdu::EncRsp {
                    skd_s: take::<8>(data, 0, "LL_ENC_RSP skd_s")?,
                    iv_s: take::<4>(data, 8, "LL_ENC_RSP iv_s")?,
                })
            }
            0x05 => {
                expect_len(0)?;
                Ok(ControlPdu::StartEncReq)
            }
            0x06 => {
                expect_len(0)?;
                Ok(ControlPdu::StartEncRsp)
            }
            0x07 => {
                expect_len(1)?;
                let [unknown_type] = take::<1>(data, 0, "LL_UNKNOWN_RSP")?;
                Ok(ControlPdu::UnknownRsp { unknown_type })
            }
            0x08 | 0x09 => {
                expect_len(8)?;
                let features = take::<8>(data, 0, "LL_FEATURE_REQ/RSP features")?;
                Ok(if opcode == 0x08 {
                    ControlPdu::FeatureReq { features }
                } else {
                    ControlPdu::FeatureRsp { features }
                })
            }
            0x0C => {
                expect_len(5)?;
                let [version, c0, c1, s0, s1] = take::<5>(data, 0, "LL_VERSION_IND")?;
                Ok(ControlPdu::VersionInd {
                    version,
                    company: u16::from_le_bytes([c0, c1]),
                    subversion: u16::from_le_bytes([s0, s1]),
                })
            }
            0x0D => {
                expect_len(1)?;
                let [error_code] = take::<1>(data, 0, "LL_REJECT_IND")?;
                Ok(ControlPdu::RejectInd { error_code })
            }
            0x12 => {
                expect_len(0)?;
                Ok(ControlPdu::PingReq)
            }
            0x13 => {
                expect_len(0)?;
                Ok(ControlPdu::PingRsp)
            }
            other => Err(ParseError::UnknownOpcode(other)),
        }
    }
}

/// HCI error code: remote user terminated connection.
pub const ERR_REMOTE_USER_TERMINATED: u8 = 0x13;
/// HCI error code: connection terminated due to MIC failure.
pub const ERR_MIC_FAILURE: u8 = 0x3D;
/// HCI error code: connection failed to be established / supervision timeout.
pub const ERR_CONNECTION_TIMEOUT: u8 = 0x08;

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(pdu: ControlPdu) {
        let bytes = pdu.to_bytes();
        assert_eq!(ControlPdu::from_bytes(&bytes).unwrap(), pdu);
    }

    #[test]
    fn all_pdus_roundtrip() {
        roundtrip(ControlPdu::ConnectionUpdateInd {
            win_size: 2,
            win_offset: 4,
            interval: 75,
            latency: 1,
            timeout: 200,
            instant: 0x1234,
        });
        roundtrip(ControlPdu::ChannelMapInd {
            channel_map: ChannelMap::from_indices(&[0, 9, 36]),
            instant: 77,
        });
        roundtrip(ControlPdu::TerminateInd { error_code: 0x13 });
        roundtrip(ControlPdu::EncReq {
            rand: [1; 8],
            ediv: 0xBEEF,
            skd_m: [2; 8],
            iv_m: [3; 4],
        });
        roundtrip(ControlPdu::EncRsp {
            skd_s: [4; 8],
            iv_s: [5; 4],
        });
        roundtrip(ControlPdu::StartEncReq);
        roundtrip(ControlPdu::StartEncRsp);
        roundtrip(ControlPdu::UnknownRsp { unknown_type: 0x42 });
        roundtrip(ControlPdu::FeatureReq { features: [6; 8] });
        roundtrip(ControlPdu::FeatureRsp { features: [7; 8] });
        roundtrip(ControlPdu::VersionInd {
            version: 9,
            company: 0x0059,
            subversion: 0x2103,
        });
        roundtrip(ControlPdu::RejectInd { error_code: 0x06 });
        roundtrip(ControlPdu::PingReq);
        roundtrip(ControlPdu::PingRsp);
    }

    #[test]
    fn connection_update_layout_matches_paper_figure() {
        // CtrData: WinSize(1) WinOffset(2) Interval(2) Latency(2)
        // Timeout(2) Instant(2) — 12 bytes with opcode.
        let pdu = ControlPdu::ConnectionUpdateInd {
            win_size: 1,
            win_offset: 0x0203,
            interval: 0x0405,
            latency: 0,
            timeout: 0x0607,
            instant: 0x0809,
        };
        let b = pdu.to_bytes();
        assert_eq!(b.len(), 12);
        assert_eq!(b[0], 0x00);
        assert_eq!(b[1], 1);
        assert_eq!(&b[2..4], &[0x03, 0x02]);
        assert_eq!(&b[10..12], &[0x09, 0x08]);
    }

    #[test]
    fn terminate_ind_is_two_bytes() {
        // The paper's scenario B injects exactly this: a 2-byte control PDU.
        let b = ControlPdu::TerminateInd {
            error_code: ERR_REMOTE_USER_TERMINATED,
        }
        .to_bytes();
        assert_eq!(b, vec![0x02, 0x13]);
    }

    #[test]
    fn malformed_rejected() {
        assert!(ControlPdu::from_bytes(&[]).is_err());
        assert!(ControlPdu::from_bytes(&[0x00, 1, 2]).is_err());
        assert!(ControlPdu::from_bytes(&[0x05, 0]).is_err());
        assert!(ControlPdu::from_bytes(&[0xFE]).is_err());
    }

    #[test]
    fn unknown_opcode_error_mentions_opcode() {
        let err = ControlPdu::from_bytes(&[0x20]).unwrap_err();
        assert!(err.to_string().contains("0x20"));
    }
}
