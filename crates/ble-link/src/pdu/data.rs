//! Data-channel PDUs.
//!
//! The 16-bit data header carries the fields the InjectaBLE attack pivots
//! on: the **SN** / **NESN** acknowledgement bits (paper §III-B.6, forged
//! per eq. 6 and observed per eq. 7) and the **MD** (More Data) bit that
//! extends a connection event.

use ble_invariants::{invariant, len_u8};
use ble_phy::Pdu;

use crate::pdu::ParseError;

/// The LLID field: what kind of data PDU this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Llid {
    /// Continuation of an L2CAP message, or an empty PDU.
    ContinuationOrEmpty,
    /// Start of (or complete) L2CAP message.
    StartOrComplete,
    /// LL control PDU.
    Control,
}

impl Llid {
    /// The 2-bit encoding.
    pub fn bits(self) -> u8 {
        match self {
            Llid::ContinuationOrEmpty => 0b01,
            Llid::StartOrComplete => 0b10,
            Llid::Control => 0b11,
        }
    }

    /// Decodes the 2-bit field.
    ///
    /// # Errors
    ///
    /// `0b00` is reserved and returns [`ParseError::ReservedLlid`].
    pub fn from_bits(bits: u8) -> Result<Self, ParseError> {
        match bits & 0b11 {
            0b01 => Ok(Llid::ContinuationOrEmpty),
            0b10 => Ok(Llid::StartOrComplete),
            0b11 => Ok(Llid::Control),
            _ => Err(ParseError::ReservedLlid),
        }
    }
}

/// The decoded 2-byte data-channel PDU header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataHeader {
    /// PDU kind.
    pub llid: Llid,
    /// Next expected sequence number (acknowledgement bit).
    pub nesn: bool,
    /// Sequence number.
    pub sn: bool,
    /// More data: the sender wants to extend the connection event.
    pub md: bool,
    /// Payload length in bytes.
    pub length: u8,
}

impl DataHeader {
    /// Encodes the header's first byte (flags).
    pub fn flag_byte(&self) -> u8 {
        self.llid.bits()
            | (u8::from(self.nesn) << 2)
            | (u8::from(self.sn) << 3)
            | (u8::from(self.md) << 4)
    }
}

/// A data-channel PDU: header plus payload.
///
/// # Example
///
/// ```
/// use ble_link::{DataPdu, Llid};
/// let pdu = DataPdu::new(Llid::StartOrComplete, true, false, false, vec![1, 2, 3]);
/// let bytes = pdu.to_bytes();
/// let parsed = DataPdu::from_bytes(&bytes).unwrap();
/// assert_eq!(parsed.header.length, 3);
/// assert!(parsed.header.nesn);
/// assert!(!parsed.header.sn);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataPdu {
    /// The decoded header.
    pub header: DataHeader,
    /// The payload bytes (possibly ciphertext + MIC when encryption is on).
    pub payload: Vec<u8>,
}

impl DataPdu {
    /// Creates a PDU, filling in the length field.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds 255 bytes.
    pub fn new(llid: Llid, nesn: bool, sn: bool, md: bool, payload: Vec<u8>) -> Self {
        assert!(payload.len() <= 255, "data payload too long");
        DataPdu {
            header: DataHeader {
                llid,
                nesn,
                sn,
                md,
                length: len_u8(payload.len()),
            },
            payload,
        }
    }

    /// An empty PDU (LLID 0b01, zero length) — what a device sends when it
    /// has nothing to say but must keep the event alive.
    pub fn empty(nesn: bool, sn: bool) -> Self {
        DataPdu::new(Llid::ContinuationOrEmpty, nesn, sn, false, Vec::new())
    }

    /// Whether this is an empty PDU.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty() && self.header.llid == Llid::ContinuationOrEmpty
    }

    /// Serialises straight into an inline [`Pdu`]: the 2-byte header plus a
    /// ≤255-byte payload always fits, so the frame path stays heap-free.
    pub fn to_pdu(&self) -> Pdu {
        DataPdu::encode_pdu(
            self.header.llid,
            self.header.nesn,
            self.header.sn,
            self.header.md,
            &self.payload,
        )
    }

    /// Encodes header fields plus a borrowed payload straight into an
    /// inline [`Pdu`], without building an owning `DataPdu` first — the
    /// per-attempt encoder for forge paths that reuse one payload buffer.
    pub fn encode_pdu(llid: Llid, nesn: bool, sn: bool, md: bool, payload: &[u8]) -> Pdu {
        let header = DataHeader {
            llid,
            nesn,
            sn,
            md,
            length: len_u8(payload.len()),
        };
        let mut out = Pdu::new();
        let ok = payload.len() <= 255
            && out.try_push(header.flag_byte()).is_ok()
            && out.try_push(header.length).is_ok()
            && out.try_extend_from_slice(payload).is_ok();
        invariant!(ok, "pdu-capacity", "data PDU exceeds inline PDU capacity");
        out
    }

    /// Serialises to over-the-air bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_pdu().as_slice().to_vec()
    }

    /// Parses over-the-air bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on truncation, length mismatch or reserved
    /// LLID.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ParseError> {
        let [flags, length] = crate::pdu::take::<2>(bytes, 0, "data header")?;
        let llid = Llid::from_bits(flags)?;
        let payload = bytes.get(2..).unwrap_or(&[]);
        if payload.len() != usize::from(length) {
            return Err(ParseError::LengthMismatch {
                declared: usize::from(length),
                actual: payload.len(),
            });
        }
        Ok(DataPdu {
            header: DataHeader {
                llid,
                nesn: flags & 0b0000_0100 != 0,
                sn: flags & 0b0000_1000 != 0,
                md: flags & 0b0001_0000 != 0,
                length,
            },
            payload: payload.to_vec(),
        })
    }

    /// Returns a copy with the NESN/SN bits replaced — used when the Link
    /// Layer retransmits a queued PDU under new acknowledgement state.
    pub fn with_seq(&self, nesn: bool, sn: bool) -> Self {
        let mut out = self.clone();
        out.header.nesn = nesn;
        out.header.sn = sn;
        out
    }

    /// Returns a copy with the MD bit set or cleared.
    pub fn with_md(&self, md: bool) -> Self {
        let mut out = self.clone();
        out.header.md = md;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_bit_layout_matches_spec() {
        let pdu = DataPdu::new(Llid::Control, true, true, true, vec![0x02]);
        let bytes = pdu.to_bytes();
        // LLID=0b11, NESN=1(bit2), SN=1(bit3), MD=1(bit4) → 0b0001_1111.
        assert_eq!(bytes[0], 0b0001_1111);
        assert_eq!(bytes[1], 1);
    }

    #[test]
    fn roundtrip_all_flag_combinations() {
        for nesn in [false, true] {
            for sn in [false, true] {
                for md in [false, true] {
                    for llid in [
                        Llid::ContinuationOrEmpty,
                        Llid::StartOrComplete,
                        Llid::Control,
                    ] {
                        let pdu = DataPdu::new(llid, nesn, sn, md, vec![7; 5]);
                        assert_eq!(DataPdu::from_bytes(&pdu.to_bytes()).unwrap(), pdu);
                    }
                }
            }
        }
    }

    #[test]
    fn empty_pdu() {
        let pdu = DataPdu::empty(true, false);
        assert!(pdu.is_empty());
        assert_eq!(pdu.to_bytes(), vec![0b0000_0101, 0]);
    }

    #[test]
    fn reserved_llid_rejected() {
        assert!(DataPdu::from_bytes(&[0b0000_0000, 0]).is_err());
    }

    #[test]
    fn truncation_rejected() {
        assert!(DataPdu::from_bytes(&[0b10]).is_err());
        assert!(DataPdu::from_bytes(&[0b10, 3, 1, 2]).is_err());
        assert!(DataPdu::from_bytes(&[0b10, 1, 1, 2]).is_err());
    }

    #[test]
    fn with_seq_replaces_only_seq_bits() {
        let pdu = DataPdu::new(Llid::StartOrComplete, false, false, true, vec![1]);
        let re = pdu.with_seq(true, true);
        assert!(re.header.nesn && re.header.sn);
        assert!(re.header.md);
        assert_eq!(re.payload, pdu.payload);
    }

    #[test]
    #[should_panic(expected = "too long")]
    fn oversized_payload_panics() {
        let _ = DataPdu::new(Llid::StartOrComplete, false, false, false, vec![0; 256]);
    }
}
