//! Advertising-channel PDUs.

use ble_invariants::{invariant, len_u8};
use ble_phy::Pdu;

use crate::address::{AddressType, DeviceAddress};
use crate::connect_params::ConnectionParams;
use crate::pdu::{take, ParseError};

/// An advertising-channel PDU (Core Spec Vol 6 Part B §2.3).
///
/// # Example
///
/// ```
/// use ble_link::{AddressType, AdvertisingPdu, DeviceAddress};
/// let adv = AdvertisingPdu::AdvInd {
///     advertiser: DeviceAddress::new([1, 2, 3, 4, 5, 6], AddressType::Public),
///     data: b"\x02\x01\x06".to_vec(),
/// };
/// let bytes = adv.to_bytes();
/// assert_eq!(AdvertisingPdu::from_bytes(&bytes).unwrap(), adv);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdvertisingPdu {
    /// Connectable undirected advertising.
    AdvInd {
        /// The advertiser's address.
        advertiser: DeviceAddress,
        /// Advertising data (flags, name, ...), up to 31 bytes.
        data: Vec<u8>,
    },
    /// Non-connectable undirected advertising.
    AdvNonconnInd {
        /// The advertiser's address.
        advertiser: DeviceAddress,
        /// Advertising data.
        data: Vec<u8>,
    },
    /// Scan request from a scanner to an advertiser.
    ScanReq {
        /// The scanner's address.
        scanner: DeviceAddress,
        /// The advertiser being queried.
        advertiser: DeviceAddress,
    },
    /// Scan response.
    ScanRsp {
        /// The advertiser's address.
        advertiser: DeviceAddress,
        /// Scan response data.
        data: Vec<u8>,
    },
    /// Connection request — the packet the InjectaBLE sniffer hunts for,
    /// since it carries every parameter needed to follow the connection.
    ConnectReq {
        /// The initiator's (future Master's) address.
        initiator: DeviceAddress,
        /// The advertiser's (future Slave's) address.
        advertiser: DeviceAddress,
        /// The connection parameters (paper Table II).
        params: ConnectionParams,
        /// The ChSel header bit: `true` selects Channel Selection
        /// Algorithm #2 (BLE 5) for the connection.
        ch_sel: bool,
    },
}

/// PDU type codes.
const TYPE_ADV_IND: u8 = 0b0000;
const TYPE_ADV_NONCONN_IND: u8 = 0b0010;
const TYPE_SCAN_REQ: u8 = 0b0011;
const TYPE_SCAN_RSP: u8 = 0b0100;
const TYPE_CONNECT_REQ: u8 = 0b0101;

impl AdvertisingPdu {
    /// Serialises straight into an inline [`Pdu`] (2-byte header then
    /// payload) without touching the heap — advertising payloads top out at
    /// 37 bytes, far under the inline capacity.
    pub fn to_pdu(&self) -> Pdu {
        let mut out = Pdu::new();
        // Header placeholder, patched below once the payload length is known.
        let mut ok = out.try_extend_from_slice(&[0, 0]).is_ok();
        let (ty, tx_add, rx_add) = match self {
            AdvertisingPdu::AdvInd { advertiser, data } => {
                ok = ok
                    && out.try_extend_from_slice(&advertiser.octets).is_ok()
                    && out.try_extend_from_slice(data).is_ok();
                (TYPE_ADV_IND, advertiser.kind.bit(), 0)
            }
            AdvertisingPdu::AdvNonconnInd { advertiser, data } => {
                ok = ok
                    && out.try_extend_from_slice(&advertiser.octets).is_ok()
                    && out.try_extend_from_slice(data).is_ok();
                (TYPE_ADV_NONCONN_IND, advertiser.kind.bit(), 0)
            }
            AdvertisingPdu::ScanReq {
                scanner,
                advertiser,
            } => {
                ok = ok
                    && out.try_extend_from_slice(&scanner.octets).is_ok()
                    && out.try_extend_from_slice(&advertiser.octets).is_ok();
                (TYPE_SCAN_REQ, scanner.kind.bit(), advertiser.kind.bit())
            }
            AdvertisingPdu::ScanRsp { advertiser, data } => {
                ok = ok
                    && out.try_extend_from_slice(&advertiser.octets).is_ok()
                    && out.try_extend_from_slice(data).is_ok();
                (TYPE_SCAN_RSP, advertiser.kind.bit(), 0)
            }
            AdvertisingPdu::ConnectReq {
                initiator,
                advertiser,
                params,
                ch_sel,
            } => {
                ok = ok
                    && out.try_extend_from_slice(&initiator.octets).is_ok()
                    && out.try_extend_from_slice(&advertiser.octets).is_ok()
                    && out.try_extend_from_slice(&params.to_bytes()).is_ok();
                let mut ty_bits = TYPE_CONNECT_REQ;
                if *ch_sel {
                    ty_bits |= 1 << 5; // the spec's ChSel header bit
                }
                (ty_bits, initiator.kind.bit(), advertiser.kind.bit())
            }
        };
        let payload_len = out.len().saturating_sub(2);
        invariant!(
            ok && payload_len <= 255,
            "pdu-capacity",
            "advertising PDU exceeds inline capacity"
        );
        if let [h0, h1, ..] = out.as_mut_slice() {
            *h0 = ty | (tx_add << 6) | (rx_add << 7);
            *h1 = len_u8(payload_len);
        }
        out
    }

    /// Serialises to over-the-air bytes: 2-byte header then payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_pdu().as_slice().to_vec()
    }

    /// Parses over-the-air bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on truncation, length mismatch or an
    /// unsupported PDU type.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ParseError> {
        let [header0, len] = take::<2>(bytes, 0, "advertising header")?;
        let ty = header0 & 0x0F;
        let ch_sel = (header0 >> 5) & 1 == 1;
        let tx_add = (header0 >> 6) & 1;
        let rx_add = (header0 >> 7) & 1;
        let payload = bytes.get(2..).unwrap_or(&[]);
        if payload.len() != usize::from(len) {
            return Err(ParseError::LengthMismatch {
                declared: usize::from(len),
                actual: payload.len(),
            });
        }
        let addr = |offset: usize, kind_bit: u8| -> Result<DeviceAddress, ParseError> {
            let octets = take::<6>(payload, offset, "device address")?;
            Ok(DeviceAddress::new(octets, AddressType::from_bit(kind_bit)))
        };
        match ty {
            TYPE_ADV_IND | TYPE_ADV_NONCONN_IND => {
                let advertiser = addr(0, tx_add)?;
                let data = payload.get(6..).unwrap_or(&[]).to_vec();
                if data.len() > 31 {
                    return Err(ParseError::InvalidField("advertising data over 31 bytes"));
                }
                Ok(if ty == TYPE_ADV_IND {
                    AdvertisingPdu::AdvInd { advertiser, data }
                } else {
                    AdvertisingPdu::AdvNonconnInd { advertiser, data }
                })
            }
            TYPE_SCAN_REQ => {
                if payload.len() != 12 {
                    return Err(ParseError::LengthMismatch {
                        declared: 12,
                        actual: payload.len(),
                    });
                }
                Ok(AdvertisingPdu::ScanReq {
                    scanner: addr(0, tx_add)?,
                    advertiser: addr(6, rx_add)?,
                })
            }
            TYPE_SCAN_RSP => Ok(AdvertisingPdu::ScanRsp {
                advertiser: addr(0, tx_add)?,
                data: payload.get(6..).unwrap_or(&[]).to_vec(),
            }),
            TYPE_CONNECT_REQ => {
                if payload.len() != 12 + ConnectionParams::ENCODED_LEN {
                    return Err(ParseError::LengthMismatch {
                        declared: 12 + ConnectionParams::ENCODED_LEN,
                        actual: payload.len(),
                    });
                }
                Ok(AdvertisingPdu::ConnectReq {
                    initiator: addr(0, tx_add)?,
                    advertiser: addr(6, rx_add)?,
                    params: ConnectionParams::from_bytes(payload.get(12..).unwrap_or(&[]))
                        .ok_or(ParseError::InvalidField("connection parameters"))?,
                    ch_sel,
                })
            }
            other => Err(ParseError::UnknownAdvType(other)),
        }
    }

    /// The advertiser address carried by this PDU.
    pub fn advertiser(&self) -> &DeviceAddress {
        match self {
            AdvertisingPdu::AdvInd { advertiser, .. }
            | AdvertisingPdu::AdvNonconnInd { advertiser, .. }
            | AdvertisingPdu::ScanRsp { advertiser, .. }
            | AdvertisingPdu::ScanReq { advertiser, .. }
            | AdvertisingPdu::ConnectReq { advertiser, .. } => advertiser,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimRng;

    fn addr(seed: u8, kind: AddressType) -> DeviceAddress {
        DeviceAddress::new([seed; 6], kind)
    }

    #[test]
    fn adv_ind_roundtrip() {
        let pdu = AdvertisingPdu::AdvInd {
            advertiser: addr(0x11, AddressType::Random),
            data: vec![0x02, 0x01, 0x06, 0x05, 0x09, b'B', b'u', b'l', b'b'],
        };
        let bytes = pdu.to_bytes();
        assert_eq!(bytes[1] as usize, bytes.len() - 2);
        assert_eq!(AdvertisingPdu::from_bytes(&bytes).unwrap(), pdu);
    }

    #[test]
    fn scan_req_and_rsp_roundtrip() {
        let req = AdvertisingPdu::ScanReq {
            scanner: addr(0x22, AddressType::Public),
            advertiser: addr(0x33, AddressType::Random),
        };
        assert_eq!(AdvertisingPdu::from_bytes(&req.to_bytes()).unwrap(), req);
        let rsp = AdvertisingPdu::ScanRsp {
            advertiser: addr(0x33, AddressType::Random),
            data: vec![1, 2, 3],
        };
        assert_eq!(AdvertisingPdu::from_bytes(&rsp.to_bytes()).unwrap(), rsp);
    }

    #[test]
    fn connect_req_roundtrip_is_34_byte_pdu() {
        let mut rng = SimRng::seed_from(9);
        let pdu = AdvertisingPdu::ConnectReq {
            initiator: addr(0x44, AddressType::Public),
            advertiser: addr(0x55, AddressType::Random),
            params: ConnectionParams::typical(&mut rng, 36),
            ch_sel: false,
        };
        let bytes = pdu.to_bytes();
        assert_eq!(bytes.len(), 2 + 34);
        assert_eq!(AdvertisingPdu::from_bytes(&bytes).unwrap(), pdu);
    }

    #[test]
    fn address_type_bits_preserved() {
        let pdu = AdvertisingPdu::ConnectReq {
            initiator: addr(0x44, AddressType::Random),
            advertiser: addr(0x55, AddressType::Public),
            params: ConnectionParams::typical(&mut SimRng::seed_from(1), 24),
            ch_sel: true,
        };
        let parsed = AdvertisingPdu::from_bytes(&pdu.to_bytes()).unwrap();
        let AdvertisingPdu::ConnectReq {
            initiator,
            advertiser,
            ch_sel,
            ..
        } = parsed
        else {
            panic!("wrong type");
        };
        assert_eq!(initiator.kind, AddressType::Random);
        assert_eq!(advertiser.kind, AddressType::Public);
        assert!(ch_sel, "ChSel bit survives the roundtrip");
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(AdvertisingPdu::from_bytes(&[]).is_err());
        assert!(AdvertisingPdu::from_bytes(&[0x00]).is_err());
        // Bad length field.
        assert!(AdvertisingPdu::from_bytes(&[0x00, 10, 1, 2]).is_err());
        // Unknown type (0b1111).
        assert!(AdvertisingPdu::from_bytes(&[0x0F, 0]).is_err());
        // SCAN_REQ with wrong size.
        assert!(AdvertisingPdu::from_bytes(&[0x03, 3, 1, 2, 3]).is_err());
        // Oversized adv data.
        let mut big = vec![0x00, 38];
        big.extend(vec![0u8; 38]);
        assert!(AdvertisingPdu::from_bytes(&big).is_err());
    }

    #[test]
    fn advertiser_accessor() {
        let pdu = AdvertisingPdu::AdvInd {
            advertiser: addr(0x66, AddressType::Public),
            data: vec![],
        };
        assert_eq!(pdu.advertiser().octets, [0x66; 6]);
    }
}
