//! Sleep clock accuracy classes.
//!
//! `CONNECT_REQ` carries a 3-bit field advertising the Master's worst-case
//! sleep-clock accuracy. The Slave combines it with its own accuracy to
//! compute window widening (paper eq. 4/5) — and so does the InjectaBLE
//! attacker, who reads the field from the sniffed `CONNECT_REQ` and assumes
//! the worst case (20 ppm) for the unknown Slave.

/// A sleep clock accuracy class (Core Spec Vol 6 Part B, Table 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SleepClockAccuracy {
    /// 251–500 ppm.
    Ppm500 = 0,
    /// 151–250 ppm.
    Ppm250 = 1,
    /// 101–150 ppm.
    Ppm150 = 2,
    /// 76–100 ppm.
    Ppm100 = 3,
    /// 51–75 ppm.
    Ppm75 = 4,
    /// 31–50 ppm.
    Ppm50 = 5,
    /// 21–30 ppm.
    Ppm30 = 6,
    /// 0–20 ppm (the most accurate class).
    Ppm20 = 7,
}

impl SleepClockAccuracy {
    /// Decodes the 3-bit field value.
    pub fn from_field(value: u8) -> Self {
        match value & 0x7 {
            0 => SleepClockAccuracy::Ppm500,
            1 => SleepClockAccuracy::Ppm250,
            2 => SleepClockAccuracy::Ppm150,
            3 => SleepClockAccuracy::Ppm100,
            4 => SleepClockAccuracy::Ppm75,
            5 => SleepClockAccuracy::Ppm50,
            6 => SleepClockAccuracy::Ppm30,
            _ => SleepClockAccuracy::Ppm20,
        }
    }

    /// The 3-bit field encoding.
    pub fn field(self) -> u8 {
        // xtask-allow: R2 — discriminants are 0..=7 by declaration, lossless in u8
        self as u8
    }

    /// The worst-case (upper bound) clock error of this class, in ppm —
    /// the value window-widening computations must assume.
    pub fn worst_case_ppm(self) -> f64 {
        match self {
            SleepClockAccuracy::Ppm500 => 500.0,
            SleepClockAccuracy::Ppm250 => 250.0,
            SleepClockAccuracy::Ppm150 => 150.0,
            SleepClockAccuracy::Ppm100 => 100.0,
            SleepClockAccuracy::Ppm75 => 75.0,
            SleepClockAccuracy::Ppm50 => 50.0,
            SleepClockAccuracy::Ppm30 => 30.0,
            SleepClockAccuracy::Ppm20 => 20.0,
        }
    }

    /// The tightest class whose bound covers a clock of `ppm` error.
    pub fn covering(ppm: f64) -> Self {
        let ppm = ppm.abs();
        if ppm <= 20.0 {
            SleepClockAccuracy::Ppm20
        } else if ppm <= 30.0 {
            SleepClockAccuracy::Ppm30
        } else if ppm <= 50.0 {
            SleepClockAccuracy::Ppm50
        } else if ppm <= 75.0 {
            SleepClockAccuracy::Ppm75
        } else if ppm <= 100.0 {
            SleepClockAccuracy::Ppm100
        } else if ppm <= 150.0 {
            SleepClockAccuracy::Ppm150
        } else if ppm <= 250.0 {
            SleepClockAccuracy::Ppm250
        } else {
            SleepClockAccuracy::Ppm500
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_roundtrip() {
        for v in 0..8 {
            assert_eq!(SleepClockAccuracy::from_field(v).field(), v);
        }
    }

    #[test]
    fn worst_case_is_monotone_decreasing_in_field() {
        let mut last = f64::INFINITY;
        for v in 0..8 {
            let ppm = SleepClockAccuracy::from_field(v).worst_case_ppm();
            assert!(ppm < last);
            last = ppm;
        }
    }

    #[test]
    fn covering_picks_tightest_class() {
        assert_eq!(SleepClockAccuracy::covering(0.0), SleepClockAccuracy::Ppm20);
        assert_eq!(
            SleepClockAccuracy::covering(20.0),
            SleepClockAccuracy::Ppm20
        );
        assert_eq!(
            SleepClockAccuracy::covering(21.0),
            SleepClockAccuracy::Ppm30
        );
        assert_eq!(
            SleepClockAccuracy::covering(-49.0),
            SleepClockAccuracy::Ppm50
        );
        assert_eq!(
            SleepClockAccuracy::covering(400.0),
            SleepClockAccuracy::Ppm500
        );
        assert_eq!(
            SleepClockAccuracy::covering(9999.0),
            SleepClockAccuracy::Ppm500
        );
    }

    #[test]
    fn covering_bound_actually_covers() {
        for ppm in [0.0, 15.0, 29.0, 42.0, 66.0, 88.0, 120.0, 200.0, 450.0] {
            assert!(SleepClockAccuracy::covering(ppm).worst_case_ppm() >= ppm);
        }
    }
}
