//! Link-Layer timing rules.
//!
//! These are the formulas at the heart of the paper: the connection
//! interval (eq. 2), the transmit window (eq. 1) and the window widening
//! the attack exploits (eqs. 4–5).

use ble_invariants::invariant_window;
use simkit::Duration;

/// The inter-frame spacing: 150 µs between consecutive frames of a
/// connection event.
pub const T_IFS: Duration = Duration::from_micros(150);

/// The base time unit for connection parameters: 1.25 ms.
pub const UNIT_1_25_MS: Duration = Duration::from_micros(1250);

/// The supervision-timeout unit: 10 ms.
pub const UNIT_10_MS: Duration = Duration::from_millis(10);

/// The constant instantaneous-jitter allowance in window widening: 32 µs
/// (16 µs of sleep-clock instantaneous deviation on each side).
pub const WIDENING_JITTER: Duration = Duration::from_micros(32);

/// Connection interval from the `Hop Interval` field (paper eq. 2):
/// `interval × 1.25 ms`.
///
/// # Example
///
/// ```
/// use ble_link::timing::connection_interval;
/// // The paper's smartphone default: hop interval 36 → 45 ms.
/// assert_eq!(connection_interval(36).as_micros(), 45_000);
/// ```
pub fn connection_interval(hop_interval: u16) -> Duration {
    UNIT_1_25_MS.saturating_mul(u64::from(hop_interval))
}

/// Window widening for a receiver expecting the next anchor (paper eq. 4):
///
/// `w = (SCA_m + SCA_s)/10⁶ × (t_nextAnchor − t_lastAnchor) + 32 µs`
///
/// `elapsed_since_anchor` is the time between the last *observed* anchor
/// point and the predicted next one — equal to the connection interval when
/// every event is received (paper eq. 5), and larger after missed events or
/// with nonzero slave latency.
///
/// # Example
///
/// ```
/// use ble_link::timing::{connection_interval, window_widening};
/// // 50 ppm master + 20 ppm slave over a 45 ms interval: 3.15 + 32 µs.
/// let w = window_widening(50.0, 20.0, connection_interval(36));
/// assert_eq!(w.as_nanos(), 35_150);
/// ```
pub fn window_widening(
    sca_master_ppm: f64,
    sca_slave_ppm: f64,
    elapsed_since_anchor: Duration,
) -> Duration {
    let drift = elapsed_since_anchor.mul_f64((sca_master_ppm + sca_slave_ppm) * 1e-6);
    let widening = drift.saturating_add(WIDENING_JITTER);
    // Eq. 4's constant term is a hard floor: a widening below 32 µs means
    // the drift arithmetic went negative or wrapped.
    invariant_window!(WIDENING_JITTER, widening, "widening below jitter floor");
    widening
}

/// Start offset of the transmit window relative to its reference point
/// (paper eq. 1): `1.25 ms + WinOffset × 1.25 ms`. The reference is the end
/// of `CONNECT_REQ` at connection initiation, or the would-have-been anchor
/// at a connection update's instant.
pub fn transmit_window_offset(win_offset: u16) -> Duration {
    UNIT_1_25_MS.saturating_add(UNIT_1_25_MS.saturating_mul(u64::from(win_offset)))
}

/// Size of the transmit window: `WinSize × 1.25 ms`.
pub fn transmit_window_size(win_size: u8) -> Duration {
    UNIT_1_25_MS.saturating_mul(u64::from(win_size))
}

/// Supervision timeout duration from its field value.
pub fn supervision_timeout(timeout: u16) -> Duration {
    UNIT_10_MS.saturating_mul(u64::from(timeout))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_equation_5_values() {
        // Paper experiment 1 range: hop intervals 25..150 with ~50+20 ppm.
        let w25 = window_widening(50.0, 20.0, connection_interval(25));
        let w150 = window_widening(50.0, 20.0, connection_interval(150));
        // 70 ppm × 31.25 ms = 2.1875 µs; +32 → 34.1875 µs.
        assert_eq!(w25.as_nanos(), 34_188); // rounded to ns
                                            // 70 ppm × 187.5 ms = 13.125 µs; +32 → 45.125 µs.
        assert_eq!(w150.as_nanos(), 45_125);
        assert!(w150 > w25, "widening grows with the interval");
    }

    #[test]
    fn widening_has_constant_floor() {
        let w = window_widening(0.0, 0.0, Duration::from_millis(100));
        assert_eq!(w, WIDENING_JITTER);
    }

    #[test]
    fn missed_anchors_widen_further() {
        let one = window_widening(50.0, 50.0, connection_interval(36));
        let three = window_widening(50.0, 50.0, connection_interval(36) * 3);
        assert!(three > one);
    }

    #[test]
    fn transmit_window_formulas() {
        assert_eq!(transmit_window_offset(0).as_micros(), 1_250);
        assert_eq!(transmit_window_offset(4).as_micros(), 6_250);
        assert_eq!(transmit_window_size(2).as_micros(), 2_500);
        assert_eq!(supervision_timeout(100).as_micros(), 1_000_000);
    }
}
