//! The Link Layer state machine.
//!
//! One [`LinkLayer`] drives one radio through the BLE Link-Layer states:
//! advertising, scanning, initiating and the connected state in either
//! role. It implements the machinery the InjectaBLE paper builds on:
//!
//! * connection events anchored on the Master's transmission, with the
//!   Slave's receive window widened per paper eq. 4/5;
//! * the SN/NESN acknowledgement scheme (paper §III-B.6);
//! * the MD bit extending connection events;
//! * the `CONNECT_UPDATE` / `CHANNEL_MAP` update procedures with their
//!   `instant` semantics (paper §III-B.7) — the lever of scenarios C and D;
//! * `LL_TERMINATE_IND` handling — the lever of scenario B;
//! * AES-CCM link encryption (start-encryption procedure) — the
//!   countermeasure whose effect §VIII quantifies;
//! * supervision timeout.
//!
//! The same implementation serves the legitimate devices *and* the
//! attacker's hijack tooling ([`LinkLayer::adopt_connection`]), just as the
//! paper's dongle embeds "a minimal BLE stack … to mimic the behaviour of
//! the different roles involved in the connection" (§V-E).

use std::collections::VecDeque;

use ble_crypto::{Direction, LinkCipher, SessionKeyMaterial};
use ble_invariants::{invariant, lsb8};
use ble_phy::{AccessFilter, Channel, NodeCtx, Pdu, RadioEvent, RawFrame, ReceivedFrame, TimerKey};
use ble_telemetry::{LinkRole, TelemetryEvent};
use simkit::{Duration, Instant};

use crate::address::DeviceAddress;
use crate::channel_map::ChannelMap;
use crate::connect_params::ConnectionParams;
use crate::csa::Csa1;
use crate::delegate::{LinkLayerDelegate, Role};
use crate::pdu::advertising::AdvertisingPdu;
use crate::pdu::control::{ControlPdu, ERR_CONNECTION_TIMEOUT, ERR_MIC_FAILURE};
use crate::pdu::data::{DataPdu, Llid};
use crate::sca::SleepClockAccuracy;
use crate::timing::{
    connection_interval, transmit_window_offset, transmit_window_size, window_widening, T_IFS,
};

/// CRC preset for advertising channels.
const ADV_CRC_INIT: u32 = ble_phy::ADVERTISING_CRC_INIT;

/// Margin added to receive deadlines to cover radio grace periods.
const RX_DEADLINE_MARGIN: Duration = Duration::from_micros(20);

/// Maps the Link-Layer role onto the telemetry vocabulary.
fn link_role(role: Role) -> LinkRole {
    match role {
        Role::Master => LinkRole::Master,
        Role::Slave => LinkRole::Slave,
    }
}

/// How long a device listens for a response/continuation frame to *start*
/// after the inter-frame spacing.
const IFS_SLACK: Duration = Duration::from_micros(60);

/// Timer purposes (low byte of [`TimerKey`]; bits 8..56 are a generation,
/// the top byte is the owner tag of [`LinkLayer::set_timer_tag`]).
mod purpose {
    pub const ADV_NEXT: u8 = 1;
    pub const ADV_LISTEN_END: u8 = 2;
    pub const IFS_ACTION: u8 = 3;
    pub const CONN_EVENT: u8 = 4;
    pub const RX_DEADLINE: u8 = 5;
    pub const SUPERVISION: u8 = 6;
    pub const SCAN_HOP: u8 = 7;
}

/// Bit position of the owner tag inside a [`TimerKey`].
const TIMER_TAG_SHIFT: u32 = 56;
/// The timer generation occupies key bits 8..56 (48 bits — at one arm per
/// simulated microsecond that is nine years of sim time before wrap).
const TIMER_GEN_MASK: u64 = (1 << 48) - 1;

/// A connection-update request (master-initiated or attacker-forged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateRequest {
    /// New transmit window size, ×1.25 ms.
    pub win_size: u8,
    /// New transmit window offset, ×1.25 ms.
    pub win_offset: u16,
    /// New connection interval, ×1.25 ms.
    pub interval: u16,
    /// New slave latency.
    pub latency: u16,
    /// New supervision timeout, ×10 ms.
    pub timeout: u16,
}

/// State needed to adopt (hijack or resume) an existing connection.
///
/// This is the hand-off structure between the InjectaBLE sniffer — which
/// tracks a victim connection passively — and a Link Layer that then *takes
/// over* one of the roles (paper scenarios B, C, D).
#[derive(Debug, Clone)]
pub struct AdoptedConnection {
    /// Role to assume.
    pub role: Role,
    /// The connection's current parameters.
    pub params: ConnectionParams,
    /// Peer device address (informational).
    pub peer: DeviceAddress,
    /// Counter of the next connection event.
    pub next_event_counter: u16,
    /// CSA#1 unmapped channel state *after* the last completed event
    /// (ignored for CSA#2 connections).
    pub last_unmapped_channel: u8,
    /// Whether the connection hops with Channel Selection Algorithm #2.
    pub csa2: bool,
    /// Anchor time of the last completed event.
    pub last_anchor: Instant,
    /// `transmitSeqNum` to use for the next transmitted PDU.
    pub sn: bool,
    /// `nextExpectedSeqNum` for the next received PDU.
    pub nesn: bool,
    /// Delay from `last_anchor` to the first event, when it is not simply
    /// one connection interval (e.g. a hijacker entering at a connection
    /// update's transmit window). `None` means one interval.
    pub first_event_delay: Option<simkit::Duration>,
}

/// Snapshot of a live connection for tests and instrumentation.
#[derive(Debug, Clone)]
pub struct ConnectionInfo {
    /// This side's role.
    pub role: Role,
    /// Current parameters.
    pub params: ConnectionParams,
    /// Counter of the next connection event.
    pub next_event_counter: u16,
    /// Current `transmitSeqNum`.
    pub sn: bool,
    /// Current `nextExpectedSeqNum`.
    pub nesn: bool,
    /// Last anchor point.
    pub last_anchor: Instant,
    /// Whether link encryption is fully active.
    pub encrypted: bool,
    /// CSA#1 unmapped channel state.
    pub last_unmapped_channel: u8,
    /// Whether the connection hops with CSA#2.
    pub csa2: bool,
    /// The peer's device address.
    pub peer: DeviceAddress,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EncPhase {
    Off,
    /// Master: `LL_ENC_REQ` sent, awaiting `LL_ENC_RSP`.
    AwaitEncRsp,
    /// Master: cipher derived, awaiting `LL_START_ENC_REQ`.
    AwaitStartReq,
    /// Both: awaiting the final `LL_START_ENC_RSP`.
    AwaitStartRsp,
    On,
}

struct EncState {
    phase: EncPhase,
    cipher: Option<LinkCipher>,
    tx_on: bool,
    rx_on: bool,
    // Master-side stash while awaiting LL_ENC_RSP.
    ltk: Option<[u8; 16]>,
    skd_m: [u8; 8],
    iv_m: [u8; 4],
}

impl EncState {
    fn off() -> Self {
        EncState {
            phase: EncPhase::Off,
            cipher: None,
            tx_on: false,
            rx_on: false,
            ltk: None,
            skd_m: [0; 8],
            iv_m: [0; 4],
        }
    }

    fn handshake_active(&self) -> bool {
        !matches!(self.phase, EncPhase::Off | EncPhase::On)
    }
}

/// What to do when the inter-frame-spacing timer fires.
enum IfsAction {
    /// Transmit a prepared data-channel frame.
    Transmit { channel: Channel, frame: RawFrame },
    /// Transmit a `CONNECT_REQ` and become Master.
    Connect {
        channel: Channel,
        pdu: Pdu,
        params: ConnectionParams,
        peer: DeviceAddress,
    },
    /// Transmit a `SCAN_RSP`.
    ScanRsp { channel: Channel, pdu: Pdu },
}

struct AdvState {
    adv_data: Vec<u8>,
    scan_data: Vec<u8>,
    interval: Duration,
    /// Index into `Channel::ADVERTISING` for the current cycle position.
    channel_pos: usize,
    connectable: bool,
}

struct ScanState {
    channel_pos: usize,
    /// Initiating: connect to this advertiser when seen.
    target: Option<(DeviceAddress, ConnectionParams)>,
}

/// Channel-selection engine for a connection: stateful CSA#1 or the
/// counter-keyed CSA#2 (BLE 5).
#[derive(Debug, Clone)]
enum HopSelection {
    Csa1(Csa1),
    Csa2(crate::csa::Csa2),
}

impl HopSelection {
    fn channel_for(&mut self, counter: u16, map: &ChannelMap) -> Channel {
        match self {
            HopSelection::Csa1(c) => c.next_channel(map),
            HopSelection::Csa2(c) => c.channel_for_event(counter, map),
        }
    }

    fn unmapped(&self) -> u8 {
        match self {
            HopSelection::Csa1(c) => c.last_unmapped(),
            HopSelection::Csa2(_) => 0,
        }
    }

    fn is_csa2(&self) -> bool {
        matches!(self, HopSelection::Csa2(_))
    }
}

struct WindowSpec {
    /// Extra listening span beyond `2 × widening` (transmit windows).
    extra: Duration,
    /// Widening applied when the window-open timer was armed.
    widening: Duration,
}

struct Conn {
    role: Role,
    params: ConnectionParams,
    peer: DeviceAddress,
    hop: HopSelection,
    /// Counter of the next connection event to start.
    next_event_counter: u16,
    /// Channel of the event currently in progress.
    current_channel: Channel,
    /// Last anchor point (own tx start for masters; master frame start for
    /// slaves).
    last_anchor: Instant,
    /// Slave: intervals elapsed since `last_anchor` for the *next* window.
    intervals_since_anchor: u64,
    /// Slave: specification of the currently open receive window.
    window: WindowSpec,
    sn: bool,
    nesn: bool,
    /// Last transmitted PDU awaiting acknowledgement.
    pending: Option<DataPdu>,
    /// Outgoing control PDUs (priority over host data).
    ctrl_queue: VecDeque<ControlPdu>,
    /// MD bit of the last frame received from the peer in this event.
    peer_md: bool,
    /// MD bit of the last frame we sent in this event.
    sent_md: bool,
    /// A frame synchronisation was detected in the current window.
    got_sync: bool,
    /// The anchor for the current event has been captured (slave side):
    /// only the *first* frame of an event is an anchor point.
    anchor_set: bool,
    /// A connection event is in progress.
    in_event: bool,
    /// First valid data packet seen (connection "established").
    established: bool,
    /// Pending connection update (applies at `instant`).
    pending_update: Option<(UpdateRequest, u16)>,
    /// Pending channel-map update (applies at `instant`).
    pending_chmap: Option<(ChannelMap, u16)>,
    /// Terminate after the next transmission completes.
    terminate_after_tx: Option<u8>,
    /// The most recently transmitted PDU was our LL_TERMINATE_IND.
    sent_terminate: bool,
    /// Slave: connection events skipped since last listening (latency).
    events_since_listen: u16,
    enc: EncState,
    /// Master: a version exchange has been answered already.
    version_sent: bool,
}

enum State {
    Standby,
    Advertising(AdvState),
    Scanning(ScanState),
    Connected(Box<Conn>),
}

/// A Bluetooth Low Energy Link Layer driving one simulated radio.
///
/// See the module documentation for scope. Construct with
/// [`LinkLayer::new`], then call `start_advertising` / `start_initiating` /
/// `start_scanning` from a [`NodeCtx`], and route every [`RadioEvent`] to
/// [`LinkLayer::handle`].
pub struct LinkLayer {
    address: DeviceAddress,
    state: State,
    /// Generation counter for timer invalidation.
    timer_gen: u64,
    /// Expected generation per purpose (index = purpose).
    expected_gen: [u64; 8],
    /// Owner tag OR-ed into the top byte of every timer key (see
    /// [`LinkLayer::set_timer_tag`]). Zero for single-LL nodes.
    timer_tag: u64,
    ifs_action: Option<IfsAction>,
    /// A CONNECT_REQ is on the air; become master when it completes.
    pending_connect: Option<(ConnectionParams, DeviceAddress)>,
    /// Advertised sleep-clock accuracy of this device.
    own_sca: SleepClockAccuracy,
    /// Scale factor on the slave-side window widening (1.0 = spec
    /// behaviour). The paper's §VIII first countermeasure shrinks this.
    widening_scale: f64,
    /// Initiator preference: request Channel Selection Algorithm #2.
    prefer_csa2: bool,
}

impl std::fmt::Debug for LinkLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkLayer")
            .field("address", &self.address.to_string())
            .field("state", &self.state_name())
            .finish()
    }
}

impl LinkLayer {
    /// Creates a Link Layer in standby, advertising the given sleep-clock
    /// accuracy class.
    pub fn new(address: DeviceAddress, own_sca: SleepClockAccuracy) -> Self {
        LinkLayer {
            address,
            state: State::Standby,
            timer_gen: 0,
            expected_gen: [0; 8],
            timer_tag: 0,
            ifs_action: None,
            pending_connect: None,
            own_sca,
            widening_scale: 1.0,
            prefer_csa2: false,
        }
    }

    /// As an initiator, request Channel Selection Algorithm #2 (BLE 5) for
    /// future connections (the `ChSel` bit of `CONNECT_REQ`).
    pub fn set_prefer_csa2(&mut self, prefer: bool) {
        self.prefer_csa2 = prefer;
    }

    /// Scales the receive-window widening this Link Layer applies as a
    /// Slave. `1.0` is the specification behaviour; smaller values model
    /// the paper's §VIII "reduce the duration of the widening windows"
    /// countermeasure (at the cost of tolerance to clock drift).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < scale <= 1.0`.
    pub fn set_widening_scale(&mut self, scale: f64) {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "widening scale must be in (0, 1]"
        );
        self.widening_scale = scale;
    }

    /// The slave-side window widening for a given span, with the
    /// countermeasure scale applied. Associated function so call sites can
    /// hold disjoint borrows into `self.state`.
    fn scaled_widening(
        master_sca_ppm: f64,
        own_sca: SleepClockAccuracy,
        scale: f64,
        elapsed: Duration,
    ) -> Duration {
        window_widening(master_sca_ppm, own_sca.worst_case_ppm(), elapsed).mul_f64(scale)
    }

    /// This device's address.
    pub fn address(&self) -> DeviceAddress {
        self.address
    }

    /// A short name of the current LL state.
    pub fn state_name(&self) -> &'static str {
        match self.state {
            State::Standby => "standby",
            State::Advertising(_) => "advertising",
            State::Scanning(_) => "scanning",
            State::Connected(_) => "connected",
        }
    }

    /// Whether a connection is active.
    pub fn is_connected(&self) -> bool {
        matches!(self.state, State::Connected(_))
    }

    /// Snapshot of the live connection, if any.
    pub fn connection_info(&self) -> Option<ConnectionInfo> {
        let State::Connected(c) = &self.state else {
            return None;
        };
        Some(ConnectionInfo {
            role: c.role,
            params: c.params,
            next_event_counter: c.next_event_counter,
            sn: c.sn,
            nesn: c.nesn,
            last_anchor: c.last_anchor,
            encrypted: c.enc.phase == EncPhase::On,
            last_unmapped_channel: c.hop.unmapped(),
            csa2: c.hop.is_csa2(),
            peer: c.peer,
        })
    }

    // ------------------------------------------------------------------
    // Timer plumbing
    // ------------------------------------------------------------------

    /// Tags every timer key this Link Layer arms with `tag` in the key's
    /// top byte, and makes [`LinkLayer::handle`] ignore timers carrying a
    /// different tag. A node driving several Link Layers (the
    /// multi-connection Central) gives each one a distinct tag so their
    /// timers can share one `NodeCtx` timer space without cross-firing.
    /// Tag 0 (the default) leaves keys exactly as a single-LL node mints
    /// them.
    pub fn set_timer_tag(&mut self, tag: u8) {
        self.timer_tag = u64::from(tag) << TIMER_TAG_SHIFT;
    }

    fn arm_local(&mut self, ctx: &mut NodeCtx<'_>, reference: Instant, delay: Duration, p: u8) {
        self.timer_gen += 1;
        let gen = self.timer_gen;
        if let Some(slot) = self.expected_gen.get_mut(usize::from(p)) {
            *slot = gen;
        } else {
            invariant!(false, "timer-purpose", "timer purpose {p} out of range");
        }
        let key = TimerKey(u64::from(p) | ((gen & TIMER_GEN_MASK) << 8) | self.timer_tag);
        ctx.set_timer_local_from(reference, delay, key);
    }

    fn disarm(&mut self, p: u8) {
        if let Some(slot) = self.expected_gen.get_mut(usize::from(p)) {
            *slot = 0;
        }
    }

    fn disarm_all(&mut self) {
        self.expected_gen = [0; 8];
        self.ifs_action = None;
    }

    fn decode_timer(&self, key: TimerKey) -> Option<u8> {
        if key.0 >> TIMER_TAG_SHIFT != self.timer_tag >> TIMER_TAG_SHIFT {
            return None; // another Link Layer's timer on a shared node
        }
        let p = lsb8(key.0);
        let gen = (key.0 >> 8) & TIMER_GEN_MASK;
        match self.expected_gen.get(usize::from(p)) {
            Some(&expected) if expected & TIMER_GEN_MASK == gen => Some(p),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Role entry points
    // ------------------------------------------------------------------

    /// Starts connectable advertising with the given AD payload and
    /// advertising interval.
    pub fn start_advertising(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        adv_data: Vec<u8>,
        scan_data: Vec<u8>,
        interval: Duration,
    ) {
        self.disarm_all();
        self.state = State::Advertising(AdvState {
            adv_data,
            scan_data,
            interval,
            channel_pos: 0,
            connectable: true,
        });
        self.advertise_on_current(ctx);
    }

    /// Starts passive scanning (observer): every advertising PDU heard is
    /// reported through the delegate.
    pub fn start_scanning(&mut self, ctx: &mut NodeCtx<'_>) {
        self.disarm_all();
        self.state = State::Scanning(ScanState {
            channel_pos: 0,
            target: None,
        });
        self.scan_current(ctx);
    }

    /// Starts initiating: scan for `target` and connect with `params`.
    pub fn start_initiating(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        target: DeviceAddress,
        params: ConnectionParams,
    ) {
        self.disarm_all();
        self.state = State::Scanning(ScanState {
            channel_pos: 0,
            target: Some((target, params)),
        });
        self.scan_current(ctx);
    }

    /// Adopts an existing connection — the hijacker's entry point.
    pub fn adopt_connection(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        adopt: AdoptedConnection,
        delegate: &mut dyn LinkLayerDelegate,
    ) {
        self.disarm_all();
        let interval = connection_interval(adopt.params.hop_interval);
        let first_delay = adopt.first_event_delay.unwrap_or(interval);
        let hop = if adopt.csa2 {
            HopSelection::Csa2(crate::csa::Csa2::new(adopt.params.access_address))
        } else {
            HopSelection::Csa1(Csa1::with_state(
                adopt.params.hop_increment,
                adopt.last_unmapped_channel,
            ))
        };
        let mut conn = Box::new(Conn {
            role: adopt.role,
            params: adopt.params,
            peer: adopt.peer,
            hop,
            next_event_counter: adopt.next_event_counter,
            current_channel: Channel::data_wrapped(0),
            last_anchor: adopt.last_anchor,
            intervals_since_anchor: 1,
            window: WindowSpec {
                extra: Duration::ZERO,
                widening: Duration::ZERO,
            },
            sn: adopt.sn,
            nesn: adopt.nesn,
            pending: None,
            ctrl_queue: VecDeque::new(),
            peer_md: false,
            sent_md: false,
            got_sync: false,
            anchor_set: false,
            in_event: false,
            established: true,
            pending_update: None,
            pending_chmap: None,
            terminate_after_tx: None,
            sent_terminate: false,
            events_since_listen: 0,
            enc: EncState::off(),
            version_sent: false,
        });
        let params = adopt.params;
        let peer = adopt.peer;
        match adopt.role {
            Role::Master => {
                let anchor = adopt.last_anchor;
                self.state = State::Connected(conn);
                self.arm_local(ctx, anchor, first_delay, purpose::CONN_EVENT);
            }
            Role::Slave => {
                let w = Self::scaled_widening(
                    adopt.params.master_sca.worst_case_ppm(),
                    self.own_sca,
                    self.widening_scale,
                    first_delay,
                );
                conn.window = WindowSpec {
                    extra: Duration::ZERO,
                    widening: w,
                };
                let anchor = adopt.last_anchor;
                self.state = State::Connected(conn);
                self.arm_local(ctx, anchor, first_delay - w, purpose::CONN_EVENT);
            }
        }
        self.arm_supervision(ctx);
        delegate.on_connected(adopt.role, &params, peer);
    }

    // ------------------------------------------------------------------
    // Host requests on a live connection
    // ------------------------------------------------------------------

    /// Queues an `LL_TERMINATE_IND`; the connection closes after it is
    /// transmitted.
    pub fn request_disconnect(&mut self, reason: u8) {
        if let State::Connected(c) = &mut self.state {
            c.ctrl_queue
                .push_back(ControlPdu::TerminateInd { error_code: reason });
            c.terminate_after_tx = Some(reason);
        }
    }

    /// Master only: queues a connection-update procedure taking effect
    /// `instant_delta` events from the next one.
    ///
    /// Calling this without a connection, or as the slave, is a host-layer
    /// bug: debug builds assert, release builds ignore the request.
    pub fn request_connection_update(&mut self, update: UpdateRequest, instant_delta: u16) {
        let State::Connected(c) = &mut self.state else {
            invariant!(
                false,
                "host-request",
                "request_connection_update: not connected"
            );
            return;
        };
        if c.role != Role::Master {
            invariant!(false, "host-request", "only the master updates parameters");
            return;
        }
        let instant = c.next_event_counter.wrapping_add(instant_delta);
        c.pending_update = Some((update, instant));
        c.ctrl_queue.push_back(ControlPdu::ConnectionUpdateInd {
            win_size: update.win_size,
            win_offset: update.win_offset,
            interval: update.interval,
            latency: update.latency,
            timeout: update.timeout,
            instant,
        });
    }

    /// Master only: queues a channel-map update.
    ///
    /// Calling this without a connection, or as the slave, is a host-layer
    /// bug: debug builds assert, release builds ignore the request.
    pub fn request_channel_map_update(&mut self, map: ChannelMap, instant_delta: u16) {
        let State::Connected(c) = &mut self.state else {
            invariant!(
                false,
                "host-request",
                "request_channel_map_update: not connected"
            );
            return;
        };
        if c.role != Role::Master {
            invariant!(false, "host-request", "only the master updates the map");
            return;
        }
        let instant = c.next_event_counter.wrapping_add(instant_delta);
        c.pending_chmap = Some((map, instant));
        c.ctrl_queue.push_back(ControlPdu::ChannelMapInd {
            channel_map: map,
            instant,
        });
    }

    /// Master only: starts the encryption procedure with the given LTK.
    ///
    /// Calling this without a connection, or as the slave, is a host-layer
    /// bug: debug builds assert, release builds ignore the request.
    pub fn request_encryption(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        ltk: [u8; 16],
        rand: [u8; 8],
        ediv: u16,
    ) {
        let State::Connected(c) = &mut self.state else {
            invariant!(false, "host-request", "request_encryption: not connected");
            return;
        };
        if c.role != Role::Master {
            invariant!(false, "host-request", "only the master starts encryption");
            return;
        }
        let mut skd_m = [0u8; 8];
        let mut iv_m = [0u8; 4];
        for b in &mut skd_m {
            *b = lsb8(ctx.rng().below(256));
        }
        for b in &mut iv_m {
            *b = lsb8(ctx.rng().below(256));
        }
        c.enc.phase = EncPhase::AwaitEncRsp;
        c.enc.ltk = Some(ltk);
        c.enc.skd_m = skd_m;
        c.enc.iv_m = iv_m;
        c.ctrl_queue.push_back(ControlPdu::EncReq {
            rand,
            ediv,
            skd_m,
            iv_m,
        });
    }

    // ------------------------------------------------------------------
    // Advertising
    // ------------------------------------------------------------------

    fn advertise_on_current(&mut self, ctx: &mut NodeCtx<'_>) {
        let State::Advertising(adv) = &self.state else {
            return;
        };
        let channel = Channel::advertising_wrapped(adv.channel_pos);
        let pdu = AdvertisingPdu::AdvInd {
            advertiser: self.address,
            data: adv.adv_data.clone(),
        };
        if ctx.is_receiving() {
            ctx.stop_rx();
        }
        ctx.transmit(
            channel,
            RawFrame::new(
                ble_phy::AccessAddress::ADVERTISING,
                pdu.to_pdu(),
                ADV_CRC_INIT,
            ),
        );
    }

    fn scan_current(&mut self, ctx: &mut NodeCtx<'_>) {
        let State::Scanning(scan) = &self.state else {
            return;
        };
        let channel = Channel::advertising_wrapped(scan.channel_pos);
        if ctx.is_receiving() {
            ctx.stop_rx();
        }
        ctx.start_rx(
            channel,
            AccessFilter::One(ble_phy::AccessAddress::ADVERTISING),
            ADV_CRC_INIT,
        );
        let now = ctx.now();
        self.arm_local(ctx, now, Duration::from_millis(10), purpose::SCAN_HOP);
    }

    // ------------------------------------------------------------------
    // Connection helpers
    // ------------------------------------------------------------------

    fn arm_supervision(&mut self, ctx: &mut NodeCtx<'_>) {
        let State::Connected(c) = &self.state else {
            return;
        };
        let timeout = if c.established {
            c.params.supervision_timeout()
        } else {
            // Establishment: six connection intervals.
            c.params.interval() * 6
        };
        let now = ctx.now();
        self.arm_local(ctx, now, timeout, purpose::SUPERVISION);
    }

    fn data_channel_frame(params: &ConnectionParams, pdu: &DataPdu) -> RawFrame {
        RawFrame::new(params.access_address, pdu.to_pdu(), params.crc_init)
    }

    /// Builds the next outgoing PDU, consuming queues as appropriate, and
    /// stores it as pending for retransmission.
    fn build_outgoing(&mut self, delegate: &mut dyn LinkLayerDelegate) -> DataPdu {
        let State::Connected(c) = &mut self.state else {
            // Only reachable from inside a connection event; outside one
            // there is nothing to send and callers re-check the state.
            invariant!(false, "link-state", "build_outgoing outside connection");
            return DataPdu::empty(false, false);
        };
        let pdu = if let Some(pending) = &c.pending {
            // Unacknowledged: retransmit with the same SN, fresh NESN.
            pending.with_seq(c.nesn, c.sn)
        } else if let Some(ctrl) = c.ctrl_queue.pop_front() {
            c.sent_terminate = matches!(ctrl, ControlPdu::TerminateInd { .. });
            let payload = ctrl.to_bytes();
            let sealed = Self::seal(c, Llid::Control, payload);
            DataPdu::new(Llid::Control, c.nesn, c.sn, false, sealed)
        } else if c.enc.handshake_active() {
            // Data is paused while encryption starts.
            DataPdu::empty(c.nesn, c.sn)
        } else {
            let mut payload = Vec::new();
            match delegate.poll_outgoing(&mut payload) {
                Some(llid) => {
                    let sealed = Self::seal(c, llid, payload);
                    DataPdu::new(llid, c.nesn, c.sn, false, sealed)
                }
                None => DataPdu::empty(c.nesn, c.sn),
            }
        };
        // MD: more control or host data waiting?
        let more =
            !c.ctrl_queue.is_empty() || (!c.enc.handshake_active() && delegate.has_outgoing());
        let pdu = pdu.with_md(more);
        c.sent_md = more;
        c.pending = Some(pdu.clone());
        pdu
    }

    /// Encrypts a payload if link encryption is active for transmit.
    fn seal(c: &mut Conn, llid: Llid, mut payload: Vec<u8>) -> Vec<u8> {
        if !c.enc.tx_on || payload.is_empty() {
            return payload;
        }
        let dir = match c.role {
            Role::Master => Direction::MasterToSlave,
            Role::Slave => Direction::SlaveToMaster,
        };
        let header = llid.bits();
        match c.enc.cipher.as_mut() {
            Some(cipher) => {
                // In place: the ciphertext reuses the plaintext buffer, only
                // the 4-byte MIC is appended.
                let mic = cipher.encrypt_in_place(dir, header, &mut payload);
                payload.extend_from_slice(&mic);
                payload
            }
            None => {
                // tx_on is only ever set after the cipher is installed;
                // release builds fall back to plaintext rather than panic.
                invariant!(false, "enc-state", "tx_on without a session cipher");
                payload
            }
        }
    }

    // ------------------------------------------------------------------
    // Main event dispatch
    // ------------------------------------------------------------------

    /// Routes one radio event through the state machine.
    pub fn handle(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        event: RadioEvent,
        delegate: &mut dyn LinkLayerDelegate,
    ) {
        match event {
            RadioEvent::Timer { key, .. } => {
                if let Some(p) = self.decode_timer(key) {
                    self.on_timer(ctx, p, delegate);
                }
            }
            RadioEvent::TxDone { at } => self.on_tx_done(ctx, at, delegate),
            RadioEvent::SyncDetected { at, .. } => {
                let _ = at;
                if let State::Connected(c) = &mut self.state {
                    if c.in_event {
                        c.got_sync = true;
                    }
                }
            }
            RadioEvent::FrameReceived(frame) => self.on_frame(ctx, frame, delegate),
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, p: u8, delegate: &mut dyn LinkLayerDelegate) {
        match p {
            purpose::ADV_NEXT => {
                if let State::Advertising(adv) = &mut self.state {
                    adv.channel_pos = 0;
                    self.advertise_on_current(ctx);
                }
            }
            purpose::ADV_LISTEN_END => {
                let next = {
                    let State::Advertising(adv) = &mut self.state else {
                        return;
                    };
                    if ctx.is_receiving() {
                        ctx.stop_rx();
                    }
                    if adv.channel_pos < 2 {
                        adv.channel_pos += 1;
                        true
                    } else {
                        false
                    }
                };
                if next {
                    self.advertise_on_current(ctx);
                } else {
                    // Cycle complete: wait the advertising interval plus the
                    // spec's 0–10 ms pseudo-random delay.
                    let State::Advertising(adv) = &self.state else {
                        return;
                    };
                    let interval = adv.interval;
                    let jitter = Duration::from_micros(ctx.rng().below(10_000));
                    let now = ctx.now();
                    self.arm_local(ctx, now, interval + jitter, purpose::ADV_NEXT);
                }
            }
            purpose::SCAN_HOP => {
                if let State::Scanning(scan) = &mut self.state {
                    scan.channel_pos = (scan.channel_pos + 1) % 3;
                    self.scan_current(ctx);
                }
            }
            purpose::IFS_ACTION => self.run_ifs_action(ctx),
            purpose::CONN_EVENT => self.on_conn_event(ctx, delegate),
            purpose::RX_DEADLINE => self.on_rx_deadline(ctx, delegate),
            purpose::SUPERVISION => {
                if matches!(self.state, State::Connected(_)) {
                    self.teardown(ctx, ERR_CONNECTION_TIMEOUT, delegate);
                }
            }
            _ => {}
        }
    }

    fn run_ifs_action(&mut self, ctx: &mut NodeCtx<'_>) {
        let Some(action) = self.ifs_action.take() else {
            return;
        };
        match action {
            IfsAction::Transmit { channel, frame } => {
                ctx.transmit(channel, frame);
            }
            IfsAction::ScanRsp { channel, pdu } => {
                ctx.transmit(
                    channel,
                    RawFrame::new(ble_phy::AccessAddress::ADVERTISING, pdu, ADV_CRC_INIT),
                );
            }
            IfsAction::Connect {
                channel,
                pdu,
                params,
                peer,
            } => {
                if ctx.is_transmitting() {
                    // Shared radio (multi-link Central): another Link Layer's
                    // frame is on the air at our IFS deadline. A CONNECT_IND
                    // sent now would clobber that frame and its `TxDone`
                    // routing, so abandon this attempt and resume scanning
                    // for the peer's next ADV_IND. A single-LL node is never
                    // transmitting at its own IFS deadline, so this arm is
                    // unreachable there.
                    self.scan_current(ctx);
                    return;
                }
                ctx.transmit(
                    channel,
                    RawFrame::new(ble_phy::AccessAddress::ADVERTISING, pdu, ADV_CRC_INIT),
                );
                // Connection state is created on TxDone; remember intent.
                self.state = State::Scanning(ScanState {
                    channel_pos: 0,
                    target: Some((peer, params)),
                });
                self.pending_connect = Some((params, peer));
            }
        }
    }

    fn on_tx_done(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        at: Instant,
        delegate: &mut dyn LinkLayerDelegate,
    ) {
        // CONNECT_REQ completed? Become master.
        if let Some((params, peer)) = self.pending_connect.take() {
            self.become_master(ctx, at, params, peer, delegate);
            return;
        }
        match &mut self.state {
            State::Advertising(_) => {
                // ADV_IND or SCAN_RSP sent: listen for requests.
                let channel = {
                    let State::Advertising(adv) = &self.state else {
                        return;
                    };
                    Channel::advertising_wrapped(adv.channel_pos)
                };
                ctx.start_rx(
                    channel,
                    AccessFilter::One(ble_phy::AccessAddress::ADVERTISING),
                    ADV_CRC_INIT,
                );
                let now = ctx.now();
                self.arm_local(
                    ctx,
                    now,
                    T_IFS + Duration::from_micros(400),
                    purpose::ADV_LISTEN_END,
                );
            }
            State::Connected(c) => {
                if c.sent_terminate {
                    let reason = c.terminate_after_tx.unwrap_or(0x13);
                    self.teardown(ctx, reason, delegate);
                    return;
                }
                match c.role {
                    Role::Master => {
                        // Anchor (or continuation) frame sent: listen for the
                        // slave's response.
                        let channel = c.current_channel;
                        c.got_sync = false;
                        ctx.start_rx(
                            channel,
                            AccessFilter::One(c.params.access_address),
                            c.params.crc_init,
                        );
                        let now = ctx.now();
                        self.arm_local(ctx, now, T_IFS + IFS_SLACK, purpose::RX_DEADLINE);
                    }
                    Role::Slave => {
                        // Response sent. Continue the event if either side
                        // set MD; otherwise the event is over.
                        if c.peer_md || c.sent_md {
                            let channel = c.current_channel;
                            c.got_sync = false;
                            ctx.start_rx(
                                channel,
                                AccessFilter::One(c.params.access_address),
                                c.params.crc_init,
                            );
                            let now = ctx.now();
                            self.arm_local(ctx, now, T_IFS + IFS_SLACK, purpose::RX_DEADLINE);
                        } else {
                            c.in_event = false;
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn become_master(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        connect_req_end: Instant,
        params: ConnectionParams,
        peer: DeviceAddress,
        delegate: &mut dyn LinkLayerDelegate,
    ) {
        let hop = if self.prefer_csa2 {
            HopSelection::Csa2(crate::csa::Csa2::new(params.access_address))
        } else {
            HopSelection::Csa1(Csa1::new(params.hop_increment))
        };
        let conn = Box::new(Conn {
            role: Role::Master,
            params,
            peer,
            hop,
            next_event_counter: 0,
            current_channel: Channel::data_wrapped(0),
            last_anchor: connect_req_end,
            intervals_since_anchor: 1,
            window: WindowSpec {
                extra: Duration::ZERO,
                widening: Duration::ZERO,
            },
            sn: false,
            nesn: false,
            pending: None,
            ctrl_queue: VecDeque::new(),
            peer_md: false,
            sent_md: false,
            got_sync: false,
            anchor_set: false,
            in_event: false,
            established: false,
            pending_update: None,
            pending_chmap: None,
            terminate_after_tx: None,
            sent_terminate: false,
            events_since_listen: 0,
            enc: EncState::off(),
            version_sent: false,
        });
        self.disarm_all();
        self.state = State::Connected(conn);
        ctx.emit(|| TelemetryEvent::ConnectionEstablished {
            access_address: params.access_address.value(),
            interval: params.interval(),
        });
        delegate.on_connected(Role::Master, &params, peer);
        // First anchor: at the start of the transmit window.
        let offset = transmit_window_offset(params.win_offset);
        self.arm_local(ctx, connect_req_end, offset, purpose::CONN_EVENT);
        self.arm_supervision(ctx);
    }

    fn become_slave(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        connect_req_end: Instant,
        params: ConnectionParams,
        peer: DeviceAddress,
        csa2: bool,
        delegate: &mut dyn LinkLayerDelegate,
    ) {
        let offset = transmit_window_offset(params.win_offset);
        let w = Self::scaled_widening(
            params.master_sca.worst_case_ppm(),
            self.own_sca,
            self.widening_scale,
            offset,
        );
        let hop = if csa2 {
            HopSelection::Csa2(crate::csa::Csa2::new(params.access_address))
        } else {
            HopSelection::Csa1(Csa1::new(params.hop_increment))
        };
        let conn = Box::new(Conn {
            role: Role::Slave,
            params,
            peer,
            hop,
            next_event_counter: 0,
            current_channel: Channel::data_wrapped(0),
            // Provisional anchor chain reference: the nominal window start,
            // so missed first events still predict future windows.
            last_anchor: connect_req_end + offset,
            intervals_since_anchor: 0,
            window: WindowSpec {
                extra: transmit_window_size(params.win_size),
                widening: w,
            },
            sn: false,
            nesn: false,
            pending: None,
            ctrl_queue: VecDeque::new(),
            peer_md: false,
            sent_md: false,
            got_sync: false,
            anchor_set: false,
            in_event: false,
            established: false,
            pending_update: None,
            pending_chmap: None,
            terminate_after_tx: None,
            sent_terminate: false,
            events_since_listen: 0,
            enc: EncState::off(),
            version_sent: false,
        });
        self.disarm_all();
        self.state = State::Connected(conn);
        ctx.emit(|| TelemetryEvent::ConnectionEstablished {
            access_address: params.access_address.value(),
            interval: params.interval(),
        });
        delegate.on_connected(Role::Slave, &params, peer);
        self.arm_local(ctx, connect_req_end, offset - w, purpose::CONN_EVENT);
        self.arm_supervision(ctx);
    }

    /// A connection event begins: master transmits the anchor frame; slave
    /// opens its widened receive window.
    fn on_conn_event(&mut self, ctx: &mut NodeCtx<'_>, delegate: &mut dyn LinkLayerDelegate) {
        // Phase 1: apply updates whose instant has arrived; a connection
        // update relocates this event into its transmit window.
        let rescheduled = {
            let State::Connected(c) = &mut self.state else {
                return;
            };
            let counter = c.next_event_counter;
            if let Some((map, instant)) = c.pending_chmap {
                if instant == counter {
                    c.params.channel_map = map;
                    c.pending_chmap = None;
                }
            }
            if let Some((update, instant)) = c.pending_update {
                if instant == counter {
                    c.pending_update = None;
                    c.params.win_size = update.win_size;
                    c.params.win_offset = update.win_offset;
                    c.params.hop_interval = update.interval;
                    c.params.latency = update.latency;
                    c.params.timeout = update.timeout;
                    let offset = transmit_window_offset(update.win_offset);
                    Some((offset, update.win_size))
                } else {
                    None
                }
            } else {
                None
            }
        };
        if let Some((offset, win_size)) = rescheduled {
            let State::Connected(c) = &mut self.state else {
                return;
            };
            match c.role {
                Role::Master => {
                    // Fired at the would-have-been anchor: transmit at the
                    // new window start.
                    let now = ctx.now();
                    self.arm_local(ctx, now, offset, purpose::CONN_EVENT);
                }
                Role::Slave => {
                    // Fired `widening` early of the would-have-been anchor.
                    let old_w = c.window.widening;
                    let master_ppm = c.params.master_sca.worst_case_ppm();
                    let span = offset + connection_interval(c.params.hop_interval);
                    let w =
                        Self::scaled_widening(master_ppm, self.own_sca, self.widening_scale, span);
                    c.window = WindowSpec {
                        extra: transmit_window_size(win_size),
                        widening: w,
                    };
                    let now = ctx.now();
                    self.arm_local(ctx, now, old_w + offset - w, purpose::CONN_EVENT);
                }
            }
            return;
        }

        // Phase 2: run the event.
        let has_outgoing = delegate.has_outgoing();
        let State::Connected(c) = &mut self.state else {
            return;
        };
        // Slave latency (paper §III-B.8): an established slave with nothing
        // to send may skip `latency` events to save energy. Skipped events
        // still consume a channel-selection step and an event counter.
        if c.role == Role::Slave
            && c.params.latency > 0
            && c.established
            && c.events_since_listen < c.params.latency
            && c.pending.is_none()
            && c.ctrl_queue.is_empty()
            && c.pending_update.is_none()
            && c.pending_chmap.is_none()
            && !has_outgoing
        {
            let _skipped = c
                .hop
                .channel_for(c.next_event_counter, &c.params.channel_map);
            c.events_since_listen += 1;
            c.intervals_since_anchor += 1;
            c.next_event_counter = c.next_event_counter.wrapping_add(1);
            let elapsed = c.params.interval() * c.intervals_since_anchor;
            let w = Self::scaled_widening(
                c.params.master_sca.worst_case_ppm(),
                self.own_sca,
                self.widening_scale,
                elapsed,
            );
            c.window = WindowSpec {
                extra: Duration::ZERO,
                widening: w,
            };
            let anchor = c.last_anchor;
            self.arm_local(ctx, anchor, elapsed - w, purpose::CONN_EVENT);
            return;
        }
        if c.role == Role::Slave {
            c.events_since_listen = 0;
        }
        let channel = c
            .hop
            .channel_for(c.next_event_counter, &c.params.channel_map);
        let event_counter = c.next_event_counter;
        ctx.emit(|| TelemetryEvent::Hop {
            channel: channel.index(),
            event_counter,
        });
        let State::Connected(c) = &mut self.state else {
            return;
        };
        c.current_channel = channel;
        c.in_event = true;
        c.got_sync = false;
        c.anchor_set = false;
        c.peer_md = false;
        c.sent_md = false;
        match c.role {
            Role::Master => {
                let pdu = self.build_outgoing(delegate);
                let State::Connected(c) = &mut self.state else {
                    return;
                };
                let frame = Self::data_channel_frame(&c.params, &pdu);
                if ctx.is_receiving() {
                    ctx.stop_rx();
                }
                let tx = ctx.transmit(channel, frame);
                c.last_anchor = tx.start;
                c.next_event_counter = c.next_event_counter.wrapping_add(1);
                let interval = c.params.interval();
                ctx.emit_at(tx.start, || TelemetryEvent::Anchor {
                    role: LinkRole::Master,
                    channel: channel.index(),
                    at: tx.start,
                });
                self.arm_local(ctx, tx.start, interval, purpose::CONN_EVENT);
            }
            Role::Slave => {
                if ctx.is_receiving() {
                    ctx.stop_rx();
                }
                ctx.start_rx(
                    channel,
                    AccessFilter::One(c.params.access_address),
                    c.params.crc_init,
                );
                // Deadline: the anchor must *start* within the window.
                let deadline = c.window.widening * 2 + c.window.extra + RX_DEADLINE_MARGIN;
                let widening = c.window.widening;
                let now = ctx.now();
                ctx.emit(|| TelemetryEvent::WindowOpen {
                    channel: channel.index(),
                    widening,
                    deadline,
                });
                self.arm_local(ctx, now, deadline, purpose::RX_DEADLINE);
            }
        }
    }

    /// No frame synchronised before the window deadline.
    fn on_rx_deadline(&mut self, ctx: &mut NodeCtx<'_>, _delegate: &mut dyn LinkLayerDelegate) {
        let State::Connected(c) = &mut self.state else {
            return;
        };
        if c.got_sync {
            // A frame is mid-air; FrameReceived will close the window.
            return;
        }
        if ctx.is_receiving() {
            ctx.stop_rx();
        }
        c.in_event = false;
        match c.role {
            Role::Master => {
                // Slave silent this event; next event timer is already armed.
            }
            Role::Slave => {
                // Missed event: extend prediction from the last anchor.
                c.intervals_since_anchor += 1;
                c.next_event_counter = c.next_event_counter.wrapping_add(1);
                let elapsed = c.params.interval() * c.intervals_since_anchor;
                let w = Self::scaled_widening(
                    c.params.master_sca.worst_case_ppm(),
                    self.own_sca,
                    self.widening_scale,
                    elapsed,
                );
                c.window = WindowSpec {
                    extra: Duration::ZERO,
                    widening: w,
                };
                let anchor = c.last_anchor;
                self.arm_local(ctx, anchor, elapsed - w, purpose::CONN_EVENT);
            }
        }
    }

    fn on_frame(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        frame: ReceivedFrame,
        delegate: &mut dyn LinkLayerDelegate,
    ) {
        match &self.state {
            State::Advertising(_) => self.on_advertising_frame(ctx, frame, delegate),
            State::Scanning(_) => self.on_scanning_frame(ctx, frame, delegate),
            State::Connected(_) => self.on_connection_frame(ctx, frame, delegate),
            State::Standby => {}
        }
    }

    fn on_advertising_frame(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        frame: ReceivedFrame,
        delegate: &mut dyn LinkLayerDelegate,
    ) {
        if !frame.crc_ok {
            return;
        }
        let Ok(pdu) = AdvertisingPdu::from_bytes(&frame.pdu) else {
            return;
        };
        match pdu {
            AdvertisingPdu::ScanReq { advertiser, .. }
                if advertiser.octets == self.address.octets =>
            {
                let State::Advertising(adv) = &self.state else {
                    return;
                };
                let channel = Channel::advertising_wrapped(adv.channel_pos);
                let rsp = AdvertisingPdu::ScanRsp {
                    advertiser: self.address,
                    data: adv.scan_data.clone(),
                };
                self.ifs_action = Some(IfsAction::ScanRsp {
                    channel,
                    pdu: rsp.to_pdu(),
                });
                ctx.stop_rx();
                self.arm_local(ctx, frame.end, T_IFS, purpose::IFS_ACTION);
            }
            AdvertisingPdu::ConnectReq {
                initiator,
                advertiser,
                params,
                ch_sel,
            } if advertiser.octets == self.address.octets => {
                let State::Advertising(adv) = &self.state else {
                    return;
                };
                if !adv.connectable || !params.is_valid() {
                    return;
                }
                ctx.stop_rx();
                ctx.trace("connect-req-rx", format!("slave connecting to {initiator}"));
                self.become_slave(ctx, frame.end, params, initiator, ch_sel, delegate);
            }
            // Explicit per R4: ScanReq/ConnectReq for other advertisers fall
            // through their guards; the rest are not addressed to us.
            AdvertisingPdu::ScanReq { .. }
            | AdvertisingPdu::ConnectReq { .. }
            | AdvertisingPdu::AdvInd { .. }
            | AdvertisingPdu::AdvNonconnInd { .. }
            | AdvertisingPdu::ScanRsp { .. } => {}
        }
    }

    fn on_scanning_frame(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        frame: ReceivedFrame,
        delegate: &mut dyn LinkLayerDelegate,
    ) {
        if !frame.crc_ok {
            return;
        }
        let Ok(pdu) = AdvertisingPdu::from_bytes(&frame.pdu) else {
            return;
        };
        delegate.on_advertising_pdu(&pdu, frame.rssi_dbm);
        let State::Scanning(scan) = &self.state else {
            return;
        };
        if let (Some((target, params)), AdvertisingPdu::AdvInd { advertiser, .. }) =
            (&scan.target, &pdu)
        {
            if advertiser.octets == target.octets {
                let channel = Channel::advertising_wrapped(scan.channel_pos);
                let connect = AdvertisingPdu::ConnectReq {
                    initiator: self.address,
                    advertiser: *advertiser,
                    params: *params,
                    ch_sel: self.prefer_csa2,
                };
                let peer = *advertiser;
                let params = *params;
                ctx.stop_rx();
                self.disarm(purpose::SCAN_HOP);
                self.ifs_action = Some(IfsAction::Connect {
                    channel,
                    pdu: connect.to_pdu(),
                    params,
                    peer,
                });
                self.arm_local(ctx, frame.end, T_IFS, purpose::IFS_ACTION);
            }
        }
    }

    fn on_connection_frame(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        frame: ReceivedFrame,
        delegate: &mut dyn LinkLayerDelegate,
    ) {
        let State::Connected(c) = &mut self.state else {
            return;
        };
        if !c.in_event || frame.access_address != c.params.access_address {
            return;
        }
        self.disarm(purpose::RX_DEADLINE);

        let State::Connected(c) = &mut self.state else {
            return;
        };
        // The slave re-anchors on the first frame of the event with a
        // matching access address, valid CRC or not — the very property
        // InjectaBLE exploits. Continuation frames within the same event do
        // not move the anchor.
        if c.role == Role::Slave && !c.anchor_set {
            c.anchor_set = true;
            c.last_anchor = frame.start;
            c.intervals_since_anchor = 0;
            let channel = c.current_channel;
            ctx.emit_at(frame.start, || TelemetryEvent::Anchor {
                role: LinkRole::Slave,
                channel: channel.index(),
                at: frame.start,
            });
            self.schedule_next_slave_event(ctx);
        }
        let State::Connected(c) = &mut self.state else {
            return;
        };

        if !frame.crc_ok {
            // Spec: close the connection event on CRC failure; no response.
            let channel = c.current_channel;
            ctx.emit(|| TelemetryEvent::CrcFail {
                channel: channel.index(),
            });
            if ctx.is_receiving() {
                ctx.stop_rx();
            }
            c.in_event = false;
            return;
        }

        let Ok(mut pdu) = DataPdu::from_bytes(&frame.pdu) else {
            if ctx.is_receiving() {
                ctx.stop_rx();
            }
            c.in_event = false;
            return;
        };

        // Sequence-number processing (Core Spec Vol 6 Part B 4.5.9).
        let peer_acked_us = pdu.header.nesn != c.sn;
        if peer_acked_us {
            c.sn = !c.sn;
            c.pending = None;
        }
        let is_new_data = pdu.header.sn == c.nesn;
        if is_new_data {
            c.nesn = !c.nesn;
        }
        c.peer_md = pdu.header.md;
        c.established = true;
        let (role, sn, nesn) = (c.role, c.sn, c.nesn);
        ctx.emit(|| TelemetryEvent::SnNesn {
            role: link_role(role),
            sn,
            nesn,
        });
        // Refresh supervision on any valid packet.
        self.arm_supervision(ctx);
        let State::Connected(c) = &mut self.state else {
            return;
        };

        // Decrypt and deliver new data.
        let mut terminated = false;
        if is_new_data && !pdu.payload.is_empty() {
            let payload = if c.enc.rx_on {
                let dir = match c.role {
                    Role::Master => Direction::SlaveToMaster,
                    Role::Slave => Direction::MasterToSlave,
                };
                match c.enc.cipher.as_mut() {
                    Some(cipher) => {
                        // In place: decrypt reuses the parsed payload buffer.
                        let mut buf = std::mem::take(&mut pdu.payload);
                        match cipher.decrypt_in_place(dir, pdu.header.llid.bits(), &mut buf) {
                            Ok(n) => {
                                buf.truncate(n);
                                Some(buf)
                            }
                            Err(_) => {
                                // MIC failure: the spec terminates immediately —
                                // the paper's encrypted-injection DoS outcome.
                                terminated = true;
                                None
                            }
                        }
                    }
                    None => {
                        // rx_on is only ever set after the cipher is
                        // installed; treat the gap like a MIC failure.
                        invariant!(false, "enc-state", "rx_on without a session cipher");
                        terminated = true;
                        None
                    }
                }
            } else {
                Some(pdu.payload.clone())
            };
            if terminated {
                self.teardown(ctx, ERR_MIC_FAILURE, delegate);
                return;
            }
            let Some(payload) = payload else {
                return;
            };
            if pdu.header.llid == Llid::Control {
                if self.handle_control(ctx, &payload, delegate) {
                    return; // connection torn down
                }
            } else {
                delegate.on_data(pdu.header.llid, &payload);
            }
        }

        // Respond / continue the event.
        let State::Connected(c) = &mut self.state else {
            return;
        };
        match c.role {
            Role::Slave => {
                // Always respond, IFS after the received frame's end.
                let response = self.build_outgoing(delegate);
                let State::Connected(c) = &mut self.state else {
                    return;
                };
                let frame_out = Self::data_channel_frame(&c.params, &response);
                let channel = c.current_channel;
                if ctx.is_receiving() {
                    ctx.stop_rx();
                }
                self.ifs_action = Some(IfsAction::Transmit {
                    channel,
                    frame: frame_out,
                });
                self.arm_local(ctx, frame.end, T_IFS, purpose::IFS_ACTION);
            }
            Role::Master => {
                // Continue the event only as signalled by the MD bits both
                // sides actually transmitted — the slave uses the same rule
                // to decide whether to keep listening.
                if c.peer_md || c.sent_md {
                    let next = self.build_outgoing(delegate);
                    let State::Connected(c) = &mut self.state else {
                        return;
                    };
                    let frame_out = Self::data_channel_frame(&c.params, &next);
                    let channel = c.current_channel;
                    if ctx.is_receiving() {
                        ctx.stop_rx();
                    }
                    self.ifs_action = Some(IfsAction::Transmit {
                        channel,
                        frame: frame_out,
                    });
                    self.arm_local(ctx, frame.end, T_IFS, purpose::IFS_ACTION);
                } else {
                    if ctx.is_receiving() {
                        ctx.stop_rx();
                    }
                    c.in_event = false;
                }
            }
        }
    }

    fn schedule_next_slave_event(&mut self, ctx: &mut NodeCtx<'_>) {
        let State::Connected(c) = &mut self.state else {
            return;
        };
        c.intervals_since_anchor += 1;
        c.next_event_counter = c.next_event_counter.wrapping_add(1);
        let elapsed = c.params.interval() * c.intervals_since_anchor;
        let w = Self::scaled_widening(
            c.params.master_sca.worst_case_ppm(),
            self.own_sca,
            self.widening_scale,
            elapsed,
        );
        c.window = WindowSpec {
            extra: Duration::ZERO,
            widening: w,
        };
        let anchor = c.last_anchor;
        self.arm_local(ctx, anchor, elapsed - w, purpose::CONN_EVENT);
    }

    /// Handles a received LL control PDU. Returns `true` if the connection
    /// was torn down.
    ///
    /// Wrapped in an `LlProcedure` span (detail = opcode) so the profiler
    /// can attribute control-procedure handling cost; the sim-time duration
    /// is 0 (processing is instantaneous in the model), the wall-clock
    /// duration measures the handler itself.
    fn handle_control(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        payload: &[u8],
        delegate: &mut dyn LinkLayerDelegate,
    ) -> bool {
        let opcode = payload.first().copied().unwrap_or(0);
        let span = ctx.span_enter(ble_telemetry::SpanKind::LlProcedure, u32::from(opcode));
        let torn_down = self.handle_control_inner(ctx, payload, delegate);
        ctx.span_exit(span);
        torn_down
    }

    fn handle_control_inner(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        payload: &[u8],
        delegate: &mut dyn LinkLayerDelegate,
    ) -> bool {
        let Ok(ctrl) = ControlPdu::from_bytes(payload) else {
            // Unknown opcode: answer LL_UNKNOWN_RSP if we at least got one.
            if let Some(&op) = payload.first() {
                if let State::Connected(c) = &mut self.state {
                    c.ctrl_queue
                        .push_back(ControlPdu::UnknownRsp { unknown_type: op });
                }
            }
            return false;
        };
        let State::Connected(c) = &mut self.state else {
            return false;
        };
        let opcode = ctrl.opcode();
        ctx.emit(|| TelemetryEvent::LlControl { opcode });
        match ctrl {
            ControlPdu::TerminateInd { error_code } => {
                self.teardown(ctx, error_code, delegate);
                return true;
            }
            ControlPdu::ConnectionUpdateInd {
                win_size,
                win_offset,
                interval,
                latency,
                timeout,
                instant,
            } => {
                if c.role == Role::Slave {
                    let delta = instant.wrapping_sub(c.next_event_counter);
                    if delta >= 0x8000 {
                        // Instant in the past: connection is unrecoverable.
                        self.teardown(ctx, ERR_CONNECTION_TIMEOUT, delegate);
                        return true;
                    }
                    c.pending_update = Some((
                        UpdateRequest {
                            win_size,
                            win_offset,
                            interval,
                            latency,
                            timeout,
                        },
                        instant,
                    ));
                }
            }
            ControlPdu::ChannelMapInd {
                channel_map,
                instant,
            } => {
                if c.role == Role::Slave && channel_map.is_valid() {
                    c.pending_chmap = Some((channel_map, instant));
                }
            }
            ControlPdu::EncReq {
                rand,
                ediv,
                skd_m,
                iv_m,
            } => {
                if c.role == Role::Slave {
                    match delegate.ltk_lookup(&rand, ediv) {
                        Some(ltk) => {
                            let mut skd_s = [0u8; 8];
                            let mut iv_s = [0u8; 4];
                            for b in &mut skd_s {
                                *b = lsb8(ctx.rng().below(256));
                            }
                            for b in &mut iv_s {
                                *b = lsb8(ctx.rng().below(256));
                            }
                            let material = SessionKeyMaterial {
                                skd_m,
                                skd_s,
                                iv_m,
                                iv_s,
                            };
                            c.enc.cipher = Some(LinkCipher::new(&ltk, &material));
                            c.enc.phase = EncPhase::AwaitStartRsp;
                            c.ctrl_queue.push_back(ControlPdu::EncRsp { skd_s, iv_s });
                            c.ctrl_queue.push_back(ControlPdu::StartEncReq);
                            // After LL_START_ENC_REQ the master's next
                            // frames to us are encrypted.
                            c.enc.rx_on = true;
                        }
                        None => {
                            c.ctrl_queue
                                .push_back(ControlPdu::RejectInd { error_code: 0x06 });
                        }
                    }
                }
            }
            ControlPdu::EncRsp { skd_s, iv_s } => {
                if c.role == Role::Master && c.enc.phase == EncPhase::AwaitEncRsp {
                    let material = SessionKeyMaterial {
                        skd_m: c.enc.skd_m,
                        skd_s,
                        iv_m: c.enc.iv_m,
                        iv_s,
                    };
                    let Some(ltk) = c.enc.ltk else {
                        // AwaitEncRsp is only entered by request_encryption,
                        // which stores the LTK; ignore the response otherwise.
                        invariant!(false, "enc-state", "AwaitEncRsp without an LTK");
                        return false;
                    };
                    c.enc.cipher = Some(LinkCipher::new(&ltk, &material));
                    c.enc.phase = EncPhase::AwaitStartReq;
                }
            }
            ControlPdu::StartEncReq => {
                if c.role == Role::Master && c.enc.phase == EncPhase::AwaitStartReq {
                    c.enc.phase = EncPhase::AwaitStartRsp;
                    c.enc.tx_on = true;
                    c.enc.rx_on = true;
                    c.ctrl_queue.push_back(ControlPdu::StartEncRsp);
                }
            }
            ControlPdu::StartEncRsp => match (c.role, c.enc.phase) {
                (Role::Slave, EncPhase::AwaitStartRsp) => {
                    c.enc.tx_on = true;
                    c.enc.phase = EncPhase::On;
                    c.ctrl_queue.push_back(ControlPdu::StartEncRsp);
                    delegate.on_encryption_change(true);
                }
                (Role::Master, EncPhase::AwaitStartRsp) => {
                    c.enc.phase = EncPhase::On;
                    delegate.on_encryption_change(true);
                }
                _ => {}
            },
            ControlPdu::FeatureReq { features } => {
                c.ctrl_queue.push_back(ControlPdu::FeatureRsp { features });
            }
            ControlPdu::VersionInd { .. } => {
                if !c.version_sent {
                    c.version_sent = true;
                    c.ctrl_queue.push_back(ControlPdu::VersionInd {
                        version: 9, // BLE 5.0
                        company: 0x0059,
                        subversion: 0x0100,
                    });
                }
            }
            ControlPdu::PingReq => c.ctrl_queue.push_back(ControlPdu::PingRsp),
            ControlPdu::FeatureRsp { .. }
            | ControlPdu::PingRsp
            | ControlPdu::UnknownRsp { .. }
            | ControlPdu::RejectInd { .. } => {}
        }
        false
    }

    fn teardown(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        reason: u8,
        delegate: &mut dyn LinkLayerDelegate,
    ) {
        if ctx.is_receiving() {
            ctx.stop_rx();
        }
        ctx.emit(|| TelemetryEvent::ConnectionClosed { reason });
        self.disarm_all();
        self.state = State::Standby;
        delegate.on_disconnected(reason);
    }
}
