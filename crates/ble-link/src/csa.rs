//! Channel selection algorithms #1 and #2.
//!
//! A connection hops to a new data channel at every connection event. The
//! paper's attack follows connections using CSA#1 ("the most commonly used
//! algorithm", §III-B.3) and notes the approach adapts directly to CSA#2 —
//! both are implemented here, with the attacker's sniffer able to follow
//! either.

use ble_invariants::{invariant, invariant_channel, lsb16, lsb8};
use ble_phy::{AccessAddress, Channel};

use crate::channel_map::ChannelMap;

/// Channel Selection Algorithm #1 state (Core Spec Vol 6 Part B 4.5.8.2).
///
/// `unmapped(n+1) = (unmapped(n) + hopIncrement) mod 37`; unused channels
/// remap through `unmapped mod numUsed` into the used-channel table.
///
/// # Example
///
/// ```
/// use ble_link::{ChannelMap, Csa1};
/// let mut csa = Csa1::new(13);
/// let map = ChannelMap::ALL;
/// let first = csa.next_channel(&map);
/// assert_eq!(first.index(), 13);
/// let second = csa.next_channel(&map);
/// assert_eq!(second.index(), 26);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Csa1 {
    hop_increment: u8,
    last_unmapped: u8,
}

impl Csa1 {
    /// Creates the selector; the first call to [`Csa1::next_channel`]
    /// returns the first data channel of the connection.
    pub fn new(hop_increment: u8) -> Self {
        Csa1 {
            hop_increment,
            last_unmapped: 0,
        }
    }

    /// Advances to and returns the channel for the next connection event.
    pub fn next_channel(&mut self, map: &ChannelMap) -> Channel {
        // Widen before adding: a hostile hop increment ≥ 220 would overflow
        // the u8 sum before the modulo could reduce it.
        self.last_unmapped =
            lsb8((u64::from(self.last_unmapped) + u64::from(self.hop_increment)) % 37);
        let index = if map.is_used(self.last_unmapped) {
            self.last_unmapped
        } else {
            let used = map.used_indices();
            let remapping_index = usize::from(self.last_unmapped) % used.len().max(1);
            remap(&used, remapping_index, self.last_unmapped)
        };
        invariant_channel!(index);
        Channel::data_wrapped(index)
    }

    /// The current unmapped channel (after the last `next_channel` call).
    pub fn last_unmapped(&self) -> u8 {
        self.last_unmapped
    }

    /// Restores a selector mid-connection from a known unmapped channel —
    /// how a sniffer or a hijacker resumes another device's hop sequence.
    pub fn with_state(hop_increment: u8, last_unmapped: u8) -> Self {
        Csa1 {
            hop_increment,
            last_unmapped: last_unmapped % 37,
        }
    }
}

/// Remapping-table lookup shared by both algorithms: `used[remapping_index]`.
///
/// A channel map with no used channels is spec-invalid (maps carry at least
/// two used channels) and can only arrive through a hostile
/// `LL_CHANNEL_MAP_IND`; debug builds assert, release builds keep hopping on
/// the unmapped index rather than dividing by zero or panicking.
fn remap(used: &[u8], remapping_index: usize, unmapped: u8) -> u8 {
    invariant!(
        !used.is_empty(),
        "channel-map",
        "remapping through an empty channel map"
    );
    used.get(remapping_index).copied().unwrap_or(unmapped)
}

/// Channel Selection Algorithm #2 (Core Spec Vol 6 Part B 4.5.8.3),
/// the PRNG-based algorithm introduced in BLE 5.0.
///
/// Stateless in the event counter: the channel is a pure function of
/// `(accessAddress, eventCounter, channelMap)`, which is exactly what made
/// D. Cauquil's CSA#2 connection sniffing possible (paper reference 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Csa2 {
    channel_identifier: u16,
}

impl Csa2 {
    /// Derives the channel identifier from the connection's access address.
    pub fn new(access_address: AccessAddress) -> Self {
        let aa = access_address.value();
        Csa2 {
            channel_identifier: lsb16(u64::from((aa >> 16) ^ (aa & 0xFFFF))),
        }
    }

    /// The channel for connection event `counter`.
    pub fn channel_for_event(&self, counter: u16, map: &ChannelMap) -> Channel {
        let prn_e = self.prn_e(counter);
        let unmapped = lsb8(u64::from(prn_e) % 37);
        let index = if map.is_used(unmapped) {
            unmapped
        } else {
            let used = map.used_indices();
            let remapping_index = (usize::from(prn_e) * used.len()) >> 16;
            remap(&used, remapping_index, unmapped)
        };
        invariant_channel!(index);
        Channel::data_wrapped(index)
    }

    fn prn_e(&self, counter: u16) -> u16 {
        let mut x = counter ^ self.channel_identifier;
        for _ in 0..3 {
            x = Self::perm(x);
            x = Self::mam(x, self.channel_identifier);
        }
        x ^ self.channel_identifier
    }

    /// Bit-reversal within each of the two bytes.
    fn perm(x: u16) -> u16 {
        let [lo, hi] = x.to_le_bytes();
        u16::from(lo.reverse_bits()) | (u16::from(hi.reverse_bits()) << 8)
    }

    /// Multiply-add-modulo: `(17·a + b) mod 2¹⁶`.
    fn mam(a: u16, b: u16) -> u16 {
        a.wrapping_mul(17).wrapping_add(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csa1_full_map_is_modular_hopping() {
        let mut csa = Csa1::new(7);
        let map = ChannelMap::ALL;
        let mut expected = 0u8;
        for _ in 0..100 {
            expected = (expected + 7) % 37;
            assert_eq!(csa.next_channel(&map).index(), expected);
        }
    }

    #[test]
    fn csa1_cycles_through_all_channels() {
        // hop increments 5..=16 are coprime checks: 37 is prime, so any
        // increment visits all 37 channels in 37 events.
        for hop in 5..=16 {
            let mut csa = Csa1::new(hop);
            let map = ChannelMap::ALL;
            #[allow(clippy::disallowed_types)] // scratch set in test code; R7 exempts #[cfg(test)]
            let mut seen = std::collections::HashSet::new();
            for _ in 0..37 {
                seen.insert(csa.next_channel(&map).index());
            }
            assert_eq!(seen.len(), 37, "hop {hop}");
        }
    }

    #[test]
    fn csa1_remaps_unused_channels_into_used_set() {
        let map = ChannelMap::from_indices(&[1, 5, 9, 20]);
        let mut csa = Csa1::new(11);
        for _ in 0..200 {
            let ch = csa.next_channel(&map);
            assert!(map.is_used(ch.index()), "{ch}");
        }
    }

    #[test]
    fn csa1_remapping_formula_matches_spec() {
        // unmapped=2 with used {1,5,9,20}: remappingIndex = 2 mod 4 = 2 → 9.
        let map = ChannelMap::from_indices(&[1, 5, 9, 20]);
        let mut csa = Csa1::new(2); // first unmapped = 2 (unused)
        assert_eq!(csa.next_channel(&map).index(), 9);
    }

    #[test]
    fn csa1_independent_followers_stay_in_sync() {
        // The attacker's sniffer runs its own CSA#1 instance: same inputs,
        // same hops.
        let map = ChannelMap::ALL.without(3).without(17);
        let mut a = Csa1::new(9);
        let mut b = Csa1::new(9);
        for _ in 0..500 {
            assert_eq!(a.next_channel(&map), b.next_channel(&map));
        }
    }

    #[test]
    fn csa1_hostile_hop_increment_does_not_overflow() {
        // A forged CONNECT_REQ can carry any 5-bit hop field, but a raw u8
        // from a hand-built selector used to overflow `last + hop` for
        // values ≥ 220; the widened arithmetic must stay in range.
        let mut csa = Csa1::new(255);
        let map = ChannelMap::ALL;
        for _ in 0..100 {
            assert!(csa.next_channel(&map).is_data());
        }
    }

    #[test]
    #[should_panic(expected = "channel-map")]
    fn csa1_empty_map_trips_invariant_in_debug() {
        let map = ChannelMap::from_indices(&[]);
        let mut csa = Csa1::new(2); // first unmapped index 2 is unused
        let _ = csa.next_channel(&map);
    }

    #[test]
    fn csa2_is_deterministic_and_in_map() {
        let aa = AccessAddress::new(0x8E89_BED6 ^ 0x1234_5678);
        let csa = Csa2::new(aa);
        let map = ChannelMap::from_indices(&[0, 2, 4, 6, 8, 10, 12, 14]);
        for counter in 0..1000u16 {
            let c1 = csa.channel_for_event(counter, &map);
            let c2 = csa.channel_for_event(counter, &map);
            assert_eq!(c1, c2);
            assert!(map.is_used(c1.index()));
        }
    }

    #[test]
    fn csa2_distribution_is_roughly_uniform() {
        let csa = Csa2::new(AccessAddress::new(0x50C2_33A1));
        let map = ChannelMap::ALL;
        let mut counts = [0usize; 37];
        let n = 37 * 400;
        for counter in 0..n as u32 {
            let ch = csa.channel_for_event((counter & 0xFFFF) as u16, &map);
            counts[ch.index() as usize] += 1;
        }
        let expected = n / 37;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "channel {i} count {c} vs expected {expected}"
            );
        }
    }

    #[test]
    fn csa2_differs_between_access_addresses() {
        let a = Csa2::new(AccessAddress::new(0x50C2_33A1));
        let b = Csa2::new(AccessAddress::new(0x1234_5678));
        let map = ChannelMap::ALL;
        let same = (0..100u16)
            .filter(|&c| a.channel_for_event(c, &map) == b.channel_for_event(c, &map))
            .count();
        assert!(same < 30, "different AAs should rarely coincide ({same})");
    }

    #[test]
    fn csa2_perm_is_involution() {
        for x in [0u16, 1, 0xFF, 0x1234, 0xFFFF, 0xA5A5] {
            assert_eq!(Csa2::perm(Csa2::perm(x)), x);
        }
    }
}
