//! Bluetooth device addresses.

use std::fmt;

use ble_invariants::lsb8;
use simkit::SimRng;

/// Whether an address is public (IEEE-assigned) or random.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddressType {
    /// Public device address.
    #[default]
    Public,
    /// Random device address.
    Random,
}

impl AddressType {
    /// The TxAdd/RxAdd header bit encoding.
    pub fn bit(self) -> u8 {
        match self {
            AddressType::Public => 0,
            AddressType::Random => 1,
        }
    }

    /// Decodes from a header bit.
    pub fn from_bit(bit: u8) -> Self {
        if bit & 1 == 0 {
            AddressType::Public
        } else {
            AddressType::Random
        }
    }
}

/// A 48-bit Bluetooth device address with its type.
///
/// # Example
///
/// ```
/// use ble_link::{AddressType, DeviceAddress};
/// let addr = DeviceAddress::new([0x01, 0x02, 0x03, 0x04, 0x05, 0x06], AddressType::Public);
/// assert_eq!(addr.to_string(), "06:05:04:03:02:01");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DeviceAddress {
    /// The six address octets, least significant first (over-the-air order).
    pub octets: [u8; 6],
    /// Public or random.
    pub kind: AddressType,
}

impl DeviceAddress {
    /// Creates an address from over-the-air-ordered octets.
    pub const fn new(octets: [u8; 6], kind: AddressType) -> Self {
        DeviceAddress { octets, kind }
    }

    /// Generates a random static address (two most significant bits set, as
    /// the spec requires for static random addresses).
    pub fn random_static(rng: &mut SimRng) -> Self {
        let mut octets = [0u8; 6];
        for o in &mut octets {
            *o = lsb8(rng.below(256));
        }
        octets[5] |= 0xC0;
        DeviceAddress::new(octets, AddressType::Random)
    }
}

impl fmt::Display for DeviceAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Human convention: most significant octet first.
        write!(
            f,
            "{:02X}:{:02X}:{:02X}:{:02X}:{:02X}:{:02X}",
            self.octets[5],
            self.octets[4],
            self.octets[3],
            self.octets[2],
            self.octets[1],
            self.octets[0]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_reverses_octets() {
        let a = DeviceAddress::new([0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF], AddressType::Public);
        assert_eq!(a.to_string(), "FF:EE:DD:CC:BB:AA");
    }

    #[test]
    fn random_static_sets_top_bits() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..20 {
            let a = DeviceAddress::random_static(&mut rng);
            assert_eq!(a.kind, AddressType::Random);
            assert_eq!(a.octets[5] & 0xC0, 0xC0);
        }
    }

    #[test]
    fn address_type_bits_roundtrip() {
        assert_eq!(
            AddressType::from_bit(AddressType::Public.bit()),
            AddressType::Public
        );
        assert_eq!(
            AddressType::from_bit(AddressType::Random.bit()),
            AddressType::Random
        );
    }
}
