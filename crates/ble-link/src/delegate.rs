//! The upward-facing interface of the Link Layer.

use crate::address::DeviceAddress;
use crate::connect_params::ConnectionParams;
use crate::pdu::advertising::AdvertisingPdu;
use crate::pdu::data::Llid;

/// Which side of the connection a Link Layer plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// The Central / Master side: transmits the anchor frame of every
    /// connection event.
    Master,
    /// The Peripheral / Slave side: listens in the (widened) receive window
    /// and responds 150 µs after the Master's frame.
    Slave,
}

impl Role {
    /// The opposite role.
    pub fn peer(self) -> Role {
        match self {
            Role::Master => Role::Slave,
            Role::Slave => Role::Master,
        }
    }
}

/// Callbacks and data source the Link Layer drives — implemented by the
/// host stack (ATT/GATT in `ble-host`) or by test harnesses.
///
/// The data path is pull-based: at each transmit opportunity the Link Layer
/// calls [`LinkLayerDelegate::poll_outgoing`]; queueing and L2CAP
/// fragmentation live above.
pub trait LinkLayerDelegate {
    /// A connection reached the Link Layer connected state.
    fn on_connected(&mut self, role: Role, params: &ConnectionParams, peer: DeviceAddress);

    /// The connection ended; `reason` is an HCI error code
    /// (`0x13` remote terminated, `0x08` supervision timeout,
    /// `0x3D` MIC failure, ...).
    fn on_disconnected(&mut self, reason: u8);

    /// A data PDU arrived (decrypted if encryption is active).
    fn on_data(&mut self, llid: Llid, payload: &[u8]);

    /// The Link Layer can transmit: write the next data PDU payload into
    /// `out` (cleared first) and return its LLID, or return `None` to send
    /// an empty keep-alive. `out` is a buffer the Link Layer reuses across
    /// calls, so a pooled host stack transmits without heap allocation.
    fn poll_outgoing(&mut self, out: &mut Vec<u8>) -> Option<Llid>;

    /// Whether more data is queued — sets the MD (More Data) bit to extend
    /// the connection event.
    fn has_outgoing(&self) -> bool;

    /// Encryption was switched on (or off) at the Link Layer.
    fn on_encryption_change(&mut self, _enabled: bool) {}

    /// Slave side: look up the Long-Term Key identified by `rand`/`ediv`
    /// from an `LL_ENC_REQ`. Returning `None` rejects encryption.
    fn ltk_lookup(&mut self, _rand: &[u8; 8], _ediv: u16) -> Option<[u8; 16]> {
        None
    }

    /// Observer/scanner role: an advertising-channel PDU was overheard.
    fn on_advertising_pdu(&mut self, _pdu: &AdvertisingPdu, _rssi_dbm: f64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_peer_is_involutive() {
        assert_eq!(Role::Master.peer(), Role::Slave);
        assert_eq!(Role::Slave.peer(), Role::Master);
        assert_eq!(Role::Master.peer().peer(), Role::Master);
    }
}
