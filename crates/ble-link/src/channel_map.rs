//! The connection channel map.
//!
//! A 37-bit bitmap (carried in five bytes of `CONNECT_REQ` and
//! `LL_CHANNEL_MAP_IND`) marking which data channels a connection uses.
//! Masters blacklist noisy channels by clearing bits and broadcasting an
//! update; the channel-selection algorithms remap unused channel indices
//! onto the used set.

use std::fmt;

use ble_phy::Channel;

/// A set of used data channels (indices 0–36).
///
/// # Example
///
/// ```
/// use ble_link::ChannelMap;
/// let map = ChannelMap::ALL;
/// assert_eq!(map.used_count(), 37);
/// let narrow = ChannelMap::from_indices(&[0, 8, 32]);
/// assert!(narrow.is_used(8));
/// assert!(!narrow.is_used(9));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelMap {
    bits: u64,
}

impl ChannelMap {
    /// All 37 data channels used.
    pub const ALL: ChannelMap = ChannelMap {
        bits: (1u64 << 37) - 1,
    };

    /// Builds a map from explicit channel indices.
    ///
    /// # Panics
    ///
    /// Panics if an index exceeds 36.
    pub fn from_indices(indices: &[u8]) -> Self {
        let mut bits = 0u64;
        for &i in indices {
            assert!(i < 37, "data channel index {i} out of range");
            bits |= 1 << i;
        }
        ChannelMap { bits }
    }

    /// Parses the five-byte over-the-air encoding (little-endian bitmap).
    pub fn from_bytes(bytes: [u8; 5]) -> Self {
        let mut bits = 0u64;
        for (i, b) in bytes.iter().enumerate() {
            bits |= (*b as u64) << (8 * i);
        }
        ChannelMap {
            bits: bits & ((1 << 37) - 1),
        }
    }

    /// The five-byte over-the-air encoding.
    pub fn to_bytes(self) -> [u8; 5] {
        let mut out = [0u8; 5];
        for (i, b) in out.iter_mut().enumerate() {
            *b = ble_invariants::lsb8(self.bits >> (8 * i));
        }
        out
    }

    /// Whether a data channel is used.
    pub fn is_used(self, index: u8) -> bool {
        index < 37 && self.bits & (1 << index) != 0
    }

    /// Number of used channels.
    pub fn used_count(self) -> u32 {
        self.bits.count_ones()
    }

    /// Used channel indices in ascending order.
    pub fn used_indices(self) -> Vec<u8> {
        (0..37).filter(|&i| self.is_used(i)).collect()
    }

    /// Used channels in ascending order.
    pub fn used_channels(self) -> Vec<Channel> {
        // Indices from `used_indices` are < 37 by construction, so the
        // modulo in `data_wrapped` never changes a value.
        self.used_indices()
            .into_iter()
            .map(Channel::data_wrapped)
            .collect()
    }

    /// Whether the map is valid per the specification (at least two used
    /// channels).
    pub fn is_valid(self) -> bool {
        self.used_count() >= 2
    }

    /// Returns the map with one channel removed (blacklisted).
    pub fn without(self, index: u8) -> Self {
        ChannelMap {
            bits: self.bits & !(1 << index),
        }
    }
}

impl Default for ChannelMap {
    fn default() -> Self {
        ChannelMap::ALL
    }
}

impl fmt::Debug for ChannelMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ChannelMap({:010X}, {} used)",
            self.bits,
            self.used_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_37_channels() {
        assert_eq!(ChannelMap::ALL.used_count(), 37);
        assert!(ChannelMap::ALL.is_valid());
        assert_eq!(ChannelMap::ALL.used_indices().len(), 37);
    }

    #[test]
    fn byte_encoding_roundtrips() {
        let m = ChannelMap::from_indices(&[0, 1, 7, 8, 15, 16, 31, 36]);
        assert_eq!(ChannelMap::from_bytes(m.to_bytes()), m);
        // Last byte only carries 5 bits.
        assert_eq!(ChannelMap::ALL.to_bytes(), [0xFF, 0xFF, 0xFF, 0xFF, 0x1F]);
    }

    #[test]
    fn from_bytes_masks_reserved_bits() {
        let m = ChannelMap::from_bytes([0xFF; 5]);
        assert_eq!(m, ChannelMap::ALL);
    }

    #[test]
    fn without_blacklists() {
        let m = ChannelMap::ALL.without(9);
        assert!(!m.is_used(9));
        assert_eq!(m.used_count(), 36);
    }

    #[test]
    fn validity_needs_two_channels() {
        assert!(!ChannelMap::from_indices(&[5]).is_valid());
        assert!(ChannelMap::from_indices(&[5, 6]).is_valid());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_index_panics() {
        let _ = ChannelMap::from_indices(&[37]);
    }
}
