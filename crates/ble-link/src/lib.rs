//! The Bluetooth Low Energy Link Layer, simulated.
//!
//! This crate implements the protocol machinery the InjectaBLE paper
//! (DSN 2021) attacks: frame formats (paper Tables I–II), the
//! channel-selection algorithms, connection events with anchor points and
//! window widening (paper §III-B, eqs. 1–5), acknowledgement flow control,
//! the parameter-update procedures and link encryption — everything needed
//! to stand up *legitimate* BLE devices whose connections the attack
//! tooling in the `injectable` crate can then sniff, inject into and
//! hijack.
//!
//! # Layering
//!
//! ```text
//!  ble-devices (lightbulb, keyfob, smartwatch, phone)   injectable (attack)
//!         │  LinkLayerDelegate callbacks                        │
//!  ┌──────▼─────────────────────────────────────────────────────▼──────┐
//!  │ ble-link: LinkLayer state machine (this crate)   sniffer/injector │
//!  └──────┬─────────────────────────────────────────────────────┬──────┘
//!         │  RadioListener events                               │
//!  ┌──────▼─────────────────────────────────────────────────────▼──────┐
//!  │ ble-phy: radio medium, timing, path loss, capture effect          │
//!  └────────────────────────────────────────────────────────────────-──┘
//! ```
//!
//! # Example
//!
//! ```
//! use ble_link::{timing, ConnectionParams, Csa1, ChannelMap};
//! use simkit::SimRng;
//!
//! // The quantities the attacker computes from a sniffed CONNECT_REQ:
//! let params = ConnectionParams::typical(&mut SimRng::seed_from(1), 36);
//! let interval = timing::connection_interval(params.hop_interval);
//! let w = timing::window_widening(params.master_sca.worst_case_ppm(), 20.0, interval);
//! assert!(w > timing::WIDENING_JITTER);
//! let mut hops = Csa1::new(params.hop_increment);
//! let _first_channel = hops.next_channel(&ChannelMap::ALL);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Tests may panic freely; the denies below only harden non-test code.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::cast_possible_truncation
    )
)]

mod address;
mod channel_map;
mod connect_params;
mod csa;
mod delegate;
mod ll;
pub mod pdu;
mod sca;
pub mod timing;

pub use address::{AddressType, DeviceAddress};
pub use channel_map::ChannelMap;
pub use connect_params::ConnectionParams;
pub use csa::{Csa1, Csa2};
pub use delegate::{LinkLayerDelegate, Role};
pub use ll::{AdoptedConnection, ConnectionInfo, LinkLayer, UpdateRequest};
pub use pdu::advertising::AdvertisingPdu;
pub use pdu::control::{
    ControlPdu, ERR_CONNECTION_TIMEOUT, ERR_MIC_FAILURE, ERR_REMOTE_USER_TERMINATED,
};
pub use pdu::data::{DataHeader, DataPdu, Llid};
pub use pdu::PduError;
pub use sca::SleepClockAccuracy;
