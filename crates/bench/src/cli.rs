//! Shared command-line parsing for the experiment binaries.
//!
//! Every `exp*`/`ablation*` binary takes the same small surface: an
//! optional positional trial count, `--seed <n>` to shift the seed base,
//! and `--json <path>` to write the `SeriesReport` rows to an extra
//! artefact path (on top of the default `target/experiments/<name>.json`).
//!
//! The campaign flags switch a binary from the in-memory
//! `run_trials_parallel` path to the streaming, checkpointable
//! [`crate::campaign`] runner: `--campaign` enables it,
//! `--chunk-size <n>` overrides the trials-per-chunk granularity,
//! `--checkpoint-dir <path>` relocates the JSONL sidecars (default
//! `target/experiments/campaigns/`), and `--campaign-max-chunks <n>`
//! stops after merging `n` chunks (resume by re-running — CI smoke uses
//! this to prove kill/resume works). Both paths produce byte-identical
//! rows at a fixed seed.

use std::path::PathBuf;

/// Parsed experiment command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// Trials per sweep point.
    pub trials: u64,
    /// Seed-base override (`--seed`).
    pub seed: Option<u64>,
    /// Extra JSON artefact path (`--json`).
    pub json: Option<PathBuf>,
    /// Run sweep points through the streaming campaign runner
    /// (`--campaign`).
    pub campaign: bool,
    /// Campaign chunk size override (`--chunk-size`).
    pub chunk_size: Option<u64>,
    /// Campaign checkpoint sidecar directory (`--checkpoint-dir`).
    pub checkpoint_dir: Option<PathBuf>,
    /// Stop each campaign point after merging this many chunks
    /// (`--campaign-max-chunks`).
    pub campaign_max_chunks: Option<u64>,
}

impl Cli {
    /// Parses `std::env::args()` with the binary's default trial count.
    pub fn parse(default_trials: u64) -> Cli {
        Self::from_args(std::env::args().skip(1), default_trials)
    }

    /// Parses an explicit argument list (first argument onwards). Unknown
    /// or malformed arguments are reported on stderr and skipped, keeping
    /// the historical "anything unparseable means the default" behaviour.
    pub fn from_args(args: impl IntoIterator<Item = String>, default_trials: u64) -> Cli {
        let mut cli = Cli {
            trials: default_trials,
            seed: None,
            json: None,
            campaign: false,
            chunk_size: None,
            checkpoint_dir: None,
            campaign_max_chunks: None,
        };
        let mut args = args.into_iter();
        let mut positional_taken = false;
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => cli.seed = Some(v),
                    None => eprintln!("warning: --seed expects an integer; ignored"),
                },
                "--json" => match args.next() {
                    Some(v) => cli.json = Some(PathBuf::from(v)),
                    None => eprintln!("warning: --json expects a path; ignored"),
                },
                "--campaign" => cli.campaign = true,
                "--chunk-size" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) if v > 0 => cli.chunk_size = Some(v),
                    _ => eprintln!("warning: --chunk-size expects a positive integer; ignored"),
                },
                "--checkpoint-dir" => match args.next() {
                    Some(v) => cli.checkpoint_dir = Some(PathBuf::from(v)),
                    None => eprintln!("warning: --checkpoint-dir expects a path; ignored"),
                },
                "--campaign-max-chunks" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) if v > 0 => cli.campaign_max_chunks = Some(v),
                    _ => eprintln!(
                        "warning: --campaign-max-chunks expects a positive integer; ignored"
                    ),
                },
                other => {
                    if !positional_taken {
                        positional_taken = true;
                        match other.parse() {
                            Ok(v) => cli.trials = v,
                            Err(_) => {
                                eprintln!(
                                    "warning: expected a trial count, got {other:?}; \
                                     using default {default_trials}"
                                );
                            }
                        }
                    } else {
                        eprintln!("warning: unrecognised argument {other:?}; ignored");
                    }
                }
            }
        }
        cli
    }

    /// The seed base for the sweep: the `--seed` override, or the binary's
    /// historical default.
    pub fn seed_base(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Cli {
        Cli::from_args(args.iter().map(|s| s.to_string()), 25)
    }

    #[test]
    fn defaults_apply_with_no_args() {
        let cli = parse(&[]);
        assert_eq!(cli.trials, 25);
        assert_eq!(cli.seed, None);
        assert_eq!(cli.json, None);
    }

    #[test]
    fn positional_trial_count() {
        assert_eq!(parse(&["3"]).trials, 3);
    }

    #[test]
    fn malformed_count_keeps_default() {
        assert_eq!(parse(&["lots"]).trials, 25);
    }

    #[test]
    fn flags_parse_in_any_order() {
        let cli = parse(&["--json", "out.json", "7", "--seed", "99"]);
        assert_eq!(cli.trials, 7);
        assert_eq!(cli.seed, Some(99));
        assert_eq!(cli.json.as_deref(), Some(std::path::Path::new("out.json")));
        assert_eq!(cli.seed_base(1_000), 99);
        assert_eq!(parse(&[]).seed_base(1_000), 1_000);
    }

    #[test]
    fn missing_flag_values_are_ignored() {
        let cli = parse(&["--seed"]);
        assert_eq!(cli.seed, None);
        let cli = parse(&["--json"]);
        assert_eq!(cli.json, None);
    }

    #[test]
    fn campaign_flags_parse() {
        let cli = parse(&[]);
        assert!(!cli.campaign);
        assert_eq!(cli.chunk_size, None);
        assert_eq!(cli.checkpoint_dir, None);
        assert_eq!(cli.campaign_max_chunks, None);
        let cli = parse(&[
            "--campaign",
            "--chunk-size",
            "128",
            "--checkpoint-dir",
            "cp",
            "--campaign-max-chunks",
            "2",
            "9",
        ]);
        assert!(cli.campaign);
        assert_eq!(cli.chunk_size, Some(128));
        assert_eq!(
            cli.checkpoint_dir.as_deref(),
            Some(std::path::Path::new("cp"))
        );
        assert_eq!(cli.campaign_max_chunks, Some(2));
        assert_eq!(cli.trials, 9);
        // Zero is not a usable chunk size or chunk budget.
        let cli = parse(&["--chunk-size", "0", "--campaign-max-chunks", "0"]);
        assert_eq!(cli.chunk_size, None);
        assert_eq!(cli.campaign_max_chunks, None);
    }
}
