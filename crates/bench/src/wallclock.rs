//! The workspace's single wall-clock quarantine (lint rule R8).
//!
//! Every host-time read in the workspace lives here, behind [`Stopwatch`].
//! Simulation logic runs on `simkit` time exclusively; wall-clock exists
//! only to *price* runs (trials/sec, phase timings) — numbers that are
//! documented as excluded from artefact byte-identity. Quarantining the
//! reads in one audited module makes the boundary checkable: `cargo xtask
//! lint` (R8) fails on any `std::time::{Instant, SystemTime}` mention in
//! any other file, so a wall-clock read can never silently leak into code
//! that feeds the simulation.

use std::time::Instant;

/// A started wall-clock timer. The only way to observe host time in the
/// workspace — and it deliberately only hands out *durations*, never a
/// timestamp, so callers cannot branch simulation logic on absolute time.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    // The one sanctioned wall-clock read (R8 quarantine): the clippy mirror
    // is workspace-wide, so this audited site opts out explicitly.
    #[allow(clippy::disallowed_methods)]
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// Monotonic nanoseconds since the first call in this process.
///
/// This is the *span clock*: the harness injects this function pointer into
/// the simulation (`World::set_span_clock`) so span wall-clock attribution
/// works without any protocol crate reading `std::time` itself. Like
/// [`Stopwatch`], it never exposes absolute time — only an offset from an
/// arbitrary process-local epoch — and the resulting `wall_ns` fields are
/// excluded from artefact byte-identity (neutralised by `cargo xtask
/// determinism`).
// The second sanctioned wall-clock read site in the R8 quarantine.
#[allow(clippy::disallowed_methods)]
pub fn monotonic_ns() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(Instant::now().duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_ns_is_monotone() {
        let a = monotonic_ns();
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_add(i * i);
        }
        assert!(x > 0);
        let b = monotonic_ns();
        assert!(b >= a, "span clock must be monotone: {a} then {b}");
    }

    #[test]
    fn stopwatch_measures_forward_time() {
        let sw = Stopwatch::start();
        // Do a little real work so even a coarse clock ticks.
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_add(i * i);
        }
        assert!(x > 0);
        let a = sw.elapsed_s();
        let b = sw.elapsed_s();
        assert!(a >= 0.0);
        assert!(b >= a, "elapsed time is monotone");
    }
}
