//! One injection trial = one data point of Figure 9.

use ble_link::Llid;
use ble_telemetry::{SharedRegistry, SpanKind};
use injectable::{Attacker, Mission};
use simkit::Duration;

use crate::rig::{ExperimentRig, RigConfig};
use crate::telemetry::{TelemetryMode, TrialMetrics};

/// Configuration of a single trial.
#[derive(Debug, Clone)]
pub struct TrialConfig {
    /// Deterministic seed.
    pub seed: u64,
    /// Scene parameters.
    pub rig: RigConfig,
    /// Raw Link-Layer payload to inject.
    pub payload: Vec<u8>,
    /// LLID for the injected frame.
    pub llid: Llid,
    /// Give up after this much simulated time.
    pub sim_budget: Duration,
    /// Telemetry capture mode (default: in-memory metrics).
    pub telemetry: TelemetryMode,
}

impl TrialConfig {
    /// A trial with default geometry and the canonical bulb write payload.
    pub fn new(seed: u64) -> Self {
        TrialConfig {
            seed,
            rig: RigConfig::default(),
            payload: canonical_write_payload(),
            llid: Llid::StartOrComplete,
            sim_budget: Duration::from_secs(120),
            telemetry: TelemetryMode::default(),
        }
    }
}

/// The paper's canonical injected frame: the ATT Write Request that turns
/// the lightbulb off, L2CAP framed (§VII-A). Padded so the whole frame is
/// 22 bytes on the air like the paper's.
pub fn canonical_write_payload() -> Vec<u8> {
    // Frame = 1 preamble + 4 AA + 2 header + LL payload + 3 CRC bytes.
    // 22 bytes over the air → LL payload of 12 bytes:
    // 4 (L2CAP) + 3 (ATT write hdr) + 5 (value).
    // Value: bulb "ping" command padded to 5 bytes keeps an observable,
    // acknowledged effect.
    let att = ble_host::att::AttPdu::WriteRequest {
        handle: 6, // the bulb control characteristic in the standard rig
        value: ble_devices::bulb_payloads::ping_padded(5),
    }
    .to_bytes();
    let frags = ble_host::l2cap::fragment(ble_host::l2cap::CID_ATT, &att, 27);
    assert_eq!(frags.len(), 1);
    frags.into_iter().next().expect("single fragment").1
}

/// A raw filler payload of an exact Link-Layer payload size (for the
/// payload-size sweep). Shaped like an L2CAP frame so victims parse it
/// harmlessly.
pub fn raw_payload_of_len(len: usize) -> Vec<u8> {
    assert!(len >= 1);
    let mut v = vec![0xEE; len];
    if len >= 4 {
        // Plausible L2CAP header: length + a CID nobody listens on.
        let sdu_len = (len - 4) as u16;
        v[0..2].copy_from_slice(&sdu_len.to_le_bytes());
        v[2..4].copy_from_slice(&0x00FFu16.to_le_bytes());
    }
    v
}

/// Outcome of one trial.
#[derive(Debug, Clone)]
pub struct TrialOutcome {
    /// Attempts before the first confirmed success; `None` if the budget
    /// ran out first.
    pub attempts: Option<u32>,
    /// Simulated seconds consumed.
    pub sim_seconds: f64,
    /// Whether the injected command observably reached the application.
    pub effect_observed: bool,
    /// Telemetry metrics, when the trial ran with a metrics sink.
    pub metrics: Option<TrialMetrics>,
    /// Whether a requested JSONL telemetry sink could not be opened and the
    /// trial silently ran with metrics only.
    pub telemetry_downgraded: bool,
}

impl TrialOutcome {
    /// An *unconfirmed effect*: the injected command observably reached the
    /// application, but the attacker's success heuristic never confirmed an
    /// attempt (e.g. it lost the connection before the Slave's response).
    /// These trials are neither successes nor clean failures and are
    /// surfaced separately in [`crate::SeriesReport`].
    pub fn unconfirmed_effect(&self) -> bool {
        self.effect_observed && self.attempts.is_none()
    }
}

/// Watchdog over the 200 ms trial-loop ticks: counts how long the attacker
/// has gone without a followed connection and decides when the harness
/// should bounce the Central and restart the attacker's scan.
///
/// The Central's own connection state is deliberately **not** consulted: an
/// earlier revision only counted ticks while the Central was connected,
/// which meant a simultaneous Central + attacker outage reset the counter
/// every tick and the bounce never fired — the trial then idled until its
/// whole budget was burned.
#[derive(Debug, Default)]
struct StallTracker {
    ticks: u32,
}

/// Trial-loop ticks (200 ms each) of continuous attacker desynchronisation
/// tolerated before bouncing the connection.
const STALL_TICKS_BEFORE_BOUNCE: u32 = 10;

impl StallTracker {
    /// Records one tick. Returns `true` when the stall has lasted long
    /// enough that the harness should bounce the connection (and resets).
    fn note(&mut self, attacker_synced: bool) -> bool {
        if attacker_synced {
            self.ticks = 0;
            return false;
        }
        self.ticks += 1;
        if self.ticks >= STALL_TICKS_BEFORE_BOUNCE {
            self.ticks = 0;
            return true;
        }
        false
    }
}

/// Flushes sinks and snapshots the registry into a per-trial metric block.
fn finish_metrics(
    rig: &mut ExperimentRig,
    registry: Option<&SharedRegistry>,
    sync_wall_s: f64,
    attack_wall_s: f64,
) -> Option<TrialMetrics> {
    rig.scenario.world.flush_telemetry();
    registry.map(|reg| TrialMetrics::from_registry(&reg.lock(), sync_wall_s, attack_wall_s))
}

/// Runs a single trial to its first confirmed injection.
pub fn run_trial(cfg: &TrialConfig) -> TrialOutcome {
    let wall_start = crate::wallclock::Stopwatch::start();
    // The rig routes `cfg.telemetry` through the scenario builder so sinks
    // attach before node bootstrap; a failed JSONL sink degrades the trial
    // to metrics-only, recorded so report rows can flag that the artefact
    // the user asked for does not exist.
    let mut rig = ExperimentRig::with_telemetry(cfg.seed, &cfg.rig, cfg.telemetry.clone());
    let telemetry_downgraded = rig.scenario.telemetry_downgraded;
    let registry = rig.scenario.metrics().cloned();
    // Spans price the trial's phases; their wall-clock side reads the
    // quarantined harness clock the rig installed (R8) and is a no-op when
    // no sink is attached.
    let sync_span = rig.scenario.world.span_enter(SpanKind::TrialSync, 0);
    if !rig.wait_synchronised(Duration::from_secs(30)) {
        rig.scenario.world.span_exit(sync_span);
        let sync_wall_s = wall_start.elapsed_s();
        let metrics = finish_metrics(&mut rig, registry.as_ref(), sync_wall_s, 0.0);
        return TrialOutcome {
            attempts: None,
            sim_seconds: rig.scenario.now().as_micros_f64() / 1e6,
            effect_observed: false,
            metrics,
            telemetry_downgraded,
        };
    }
    rig.scenario.world.span_exit(sync_span);
    let sync_wall_s = wall_start.elapsed_s();
    rig.attacker_mut().arm(Mission::InjectRaw {
        llid: cfg.llid,
        payload: cfg.payload.clone(),
        wanted_successes: 1,
    });
    let deadline = rig.scenario.now() + cfg.sim_budget;
    let mut attempts = None;
    let mut stall = StallTracker::default();
    let follow_span = rig.scenario.world.span_enter(SpanKind::TrialFollow, 0);
    while rig.scenario.now() < deadline {
        rig.scenario.run_for(Duration::from_millis(200));
        let bounce = {
            let attacker = rig.attacker();
            if attacker.stats().successes() >= 1 {
                attempts = attacker.stats().attempts_to_first_success();
                break;
            }
            // Under sustained impairment the attacker's bounded resync can
            // run out of retries; the trial is then a failure and burning
            // the rest of the budget would not change that.
            if attacker.resync_exhausted() {
                break;
            }
            stall.note(attacker.connection().is_some())
        };
        // The attacker can permanently desynchronise if the connection
        // cycled while it was injecting blind. The paper's operators simply
        // restarted the connection; do the same: bounce the central so a
        // fresh CONNECT_REQ reaches the sniffer, and restart the attacker's
        // scan in case its resync loop went quiet (a no-op while it is
        // already scanning or following).
        if bounce {
            if rig.central().ll.is_connected() {
                rig.central_mut().ll.request_disconnect(0x13);
            }
            let attacker_id = rig.attacker_id();
            rig.scenario
                .world
                .with_node_ctx::<Attacker, _>(attacker_id, |a, ctx| a.restart_resync(ctx));
        }
    }
    rig.scenario.world.span_exit(follow_span);
    let attack_wall_s = wall_start.elapsed_s() - sync_wall_s;
    let verify_span = rig.scenario.world.span_enter(SpanKind::TrialVerify, 0);
    let effect_observed = rig.bulb().app.pings > 0;
    // The verify span must close before the flush inside `finish_metrics`,
    // or its exit record would miss the registry snapshot.
    rig.scenario.world.span_exit(verify_span);
    let metrics = finish_metrics(&mut rig, registry.as_ref(), sync_wall_s, attack_wall_s);
    TrialOutcome {
        attempts,
        sim_seconds: rig.scenario.now().as_micros_f64() / 1e6,
        effect_observed,
        metrics,
        telemetry_downgraded,
    }
}

/// Seed for trial `i` of a series with seed base `base`: a golden-ratio
/// stride (`i · 2⁶⁴/φ`, wrapping) away from the base.
///
/// The stride decorrelates neighbouring trials' RNG streams far better
/// than consecutive integers would, while staying a pure function of
/// `(base, i)` so a single trial of a series can be replayed in isolation.
/// Distinct indices map to distinct seeds (the odd stride is invertible
/// modulo 2⁶⁴), so trials within a series never collide.
pub fn trial_seed(base: u64, i: u64) -> u64 {
    base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The outcomes of a trial series plus the accounting the outcomes alone
/// cannot carry: how many trials were *requested* and how many panicked.
///
/// Report denominators come from `requested`, never from `outcomes.len()`
/// — a panicked trial used to silently shrink every success-rate
/// denominator, which is exactly the lossy accounting this type fixes.
#[derive(Debug, Clone)]
pub struct TrialSeries {
    /// Completed trials in seed order (panicked trials are absent here but
    /// counted in `panicked`).
    pub outcomes: Vec<TrialOutcome>,
    /// Trials requested for the series.
    pub requested: u64,
    /// Trials whose `run_trial` panicked (caught; seed reported on stderr).
    pub panicked: u64,
}

impl TrialSeries {
    /// Trials that ran to completion.
    pub fn completed(&self) -> u64 {
        self.outcomes.len() as u64
    }
}

/// Runs `count` trials across OS threads, trial `i` seeded with
/// [`trial_seed`]`(base.seed, i)` (a golden-ratio stride, **not**
/// consecutive seeds — consecutive integers produce correlated RNG
/// streams).
///
/// A panicking trial does not bring the series down: the panic is caught,
/// the failing seed is reported on stderr, the trial is counted in
/// [`TrialSeries::panicked`], and every other trial's outcome is kept in
/// seed order. `BENCH_THREADS` pins the worker count (used by `cargo xtask
/// determinism` to prove outcomes identical at 1 vs. N threads); the
/// series is in seed order either way, so the thread count can never show
/// through in the artefacts.
///
/// This is the in-memory path: every outcome is materialised. For series
/// too large to hold — or that need checkpoint/resume — use
/// [`crate::campaign::run_campaign`], which streams outcomes through the
/// same chunked engine without keeping them.
pub fn run_trials_parallel(base: &TrialConfig, count: u64) -> TrialSeries {
    let mut series = TrialSeries {
        outcomes: Vec::new(),
        requested: count,
        panicked: 0,
    };
    // Chunk size 1 keeps the old per-trial work stealing (trials are
    // heavyweight, so scheduling granularity matters more than channel
    // overhead); chunks arrive at the merger in seed order regardless.
    crate::campaign::run_chunked(base, count, 1, 0, None, &run_trial, |_, chunk| {
        for slot in chunk {
            match slot {
                Some(outcome) => series.outcomes.push(outcome),
                None => series.panicked += 1,
            }
        }
    });
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_payload_gives_22_byte_frame() {
        let p = canonical_write_payload();
        // LL payload 12 → 1+4+2+12+3 = 22 bytes over the air.
        assert_eq!(p.len(), 12);
    }

    #[test]
    fn raw_payload_sizes() {
        for len in [1usize, 4, 9, 14, 16, 27] {
            assert_eq!(raw_payload_of_len(len).len(), len);
        }
    }

    #[test]
    fn one_trial_succeeds_quickly_at_close_range() {
        let cfg = TrialConfig::new(42);
        let out = run_trial(&cfg);
        assert!(out.attempts.is_some(), "trial must succeed: {out:?}");
        assert!(out.attempts.unwrap() <= 50);
        assert!(out.effect_observed, "padded ping must reach the bulb app");
        // Default mode is Metrics: the trial must carry a metric block with
        // the attack-phase histograms populated.
        let metrics = out.metrics.expect("default telemetry mode is Metrics");
        assert!(metrics.events_total > 0);
        assert!(metrics.events_per_sec > 0.0);
        assert!(metrics.sync_wall_s > 0.0);
        let lead = metrics.lead_time.expect("injection attempts were made");
        assert!(lead.count() >= 1);
        let anchor = metrics.anchor_error.expect("anchors were observed");
        assert!(anchor.count() >= 1);
    }

    #[test]
    fn trial_phases_land_in_the_phase_profile() {
        let cfg = TrialConfig::new(42);
        let out = run_trial(&cfg);
        let metrics = out.metrics.expect("default telemetry mode is Metrics");
        let phase = |name: &str| {
            metrics
                .phase_profile
                .iter()
                .find(|p| p.phase == name)
                .copied()
                .unwrap_or_else(|| panic!("phase {name} missing: {:?}", metrics.phase_profile))
        };
        let sync = phase("trial-sync");
        assert_eq!(sync.count, 1);
        assert!(sync.sim_ns > 0, "sync phase consumes simulated time");
        let follow = phase("trial-follow");
        assert_eq!(follow.count, 1);
        assert!(follow.sim_ns > 0);
        let verify = phase("trial-verify");
        assert_eq!(verify.count, 1);
        // Verification is a pure state read: zero simulated time.
        assert_eq!(verify.sim_ns, 0);
        // The attacker and PHY layers report under the trial phases. (No
        // `ll-procedure` row: a clean close-range trial exchanges no LL
        // control PDUs — that span is covered by the ble-link tests.)
        assert!(phase("attacker-scan").count >= 1);
        assert!(phase("attacker-follow").count >= 1);
        assert!(phase("attacker-inject").count >= 1);
        assert!(phase("channel-airtime").count > 10);
        // Airtime nests under the trial phases, so the trial phases' self
        // time is strictly less than their total.
        assert!(follow.self_sim_ns < follow.sim_ns);
    }

    #[test]
    fn telemetry_off_yields_no_metrics() {
        let mut cfg = TrialConfig::new(43);
        cfg.telemetry = crate::telemetry::TelemetryMode::Off;
        let out = run_trial(&cfg);
        assert!(out.metrics.is_none());
    }

    #[test]
    fn telemetry_mode_does_not_perturb_the_simulation() {
        let mut off = TrialConfig::new(44);
        off.telemetry = crate::telemetry::TelemetryMode::Off;
        let with = TrialConfig::new(44);
        let a = run_trial(&off);
        let b = run_trial(&with);
        assert_eq!(a.attempts, b.attempts, "telemetry must be observation-only");
        assert_eq!(a.sim_seconds, b.sim_seconds);
    }

    #[test]
    fn trial_seeds_are_deterministic_and_collision_free() {
        // Pure function of (base, i).
        assert_eq!(trial_seed(7, 3), trial_seed(7, 3));
        assert_eq!(trial_seed(7, 0), 7);
        // Golden-ratio stride, not consecutive integers.
        assert_ne!(trial_seed(7, 1), 8);
        assert_eq!(trial_seed(7, 1), 7u64.wrapping_add(0x9E37_79B9_7F4A_7C15));
        // No collisions across a series far larger than any real sweep.
        #[allow(clippy::disallowed_types)] // scratch set in test code; R7 exempts #[cfg(test)]
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(trial_seed(42, i)), "seed collision at i={i}");
        }
    }

    #[test]
    fn stall_tracker_bounces_even_when_the_central_is_also_down() {
        // Regression: the old watchdog only counted ticks while the Central
        // was connected, so a simultaneous Central + attacker outage never
        // bounced and the trial idled its whole budget away. The tracker
        // must fire from attacker desynchronisation alone.
        let mut stall = StallTracker::default();
        for _ in 0..STALL_TICKS_BEFORE_BOUNCE - 1 {
            assert!(!stall.note(false));
        }
        assert!(stall.note(false), "bounce fires after the threshold");
        // …and the counter restarts cleanly afterwards.
        assert!(!stall.note(false));
        // A synced tick resets the stall: the full threshold is required
        // again before the next bounce.
        assert!(!stall.note(true));
        for _ in 0..STALL_TICKS_BEFORE_BOUNCE - 1 {
            assert!(!stall.note(false));
        }
        assert!(stall.note(false));
    }

    #[test]
    fn unconfirmed_effect_requires_effect_without_confirmation() {
        let mut out = TrialOutcome {
            attempts: None,
            sim_seconds: 1.0,
            effect_observed: true,
            metrics: None,
            telemetry_downgraded: false,
        };
        assert!(out.unconfirmed_effect());
        out.attempts = Some(3);
        assert!(!out.unconfirmed_effect());
        out.attempts = None;
        out.effect_observed = false;
        assert!(!out.unconfirmed_effect());
    }

    #[test]
    fn jsonl_sink_failure_is_recorded_as_a_downgrade() {
        let mut cfg = TrialConfig::new(45);
        cfg.sim_budget = Duration::from_secs(30);
        // A path whose parent cannot exist: JsonlSink::create must fail.
        cfg.telemetry = crate::telemetry::TelemetryMode::Jsonl(
            std::path::Path::new("/proc/definitely/not/writable/trial.jsonl").to_path_buf(),
        );
        let out = run_trial(&cfg);
        assert!(out.telemetry_downgraded, "failed sink must be recorded");
        assert!(out.metrics.is_some(), "metrics still ride along");
        // A healthy trial never reports a downgrade.
        let ok = run_trial(&TrialConfig::new(45));
        assert!(!ok.telemetry_downgraded);
    }

    #[test]
    fn parallel_trials_are_deterministic() {
        let cfg = TrialConfig::new(7);
        let a = run_trials_parallel(&cfg, 4);
        let b = run_trials_parallel(&cfg, 4);
        let attempts = |s: &TrialSeries| s.outcomes.iter().map(|o| o.attempts).collect::<Vec<_>>();
        assert_eq!(attempts(&a), attempts(&b));
        assert_eq!(a.requested, 4);
        assert_eq!(a.completed(), 4);
        assert_eq!(a.panicked, 0);
    }

    /// A mild but non-trivial impairment plan: every fault family is
    /// represented, yet the trial still succeeds at close range.
    fn mild_fault_plan() -> simkit::FaultPlan {
        use simkit::{DriftExcursion, FadingEpisode, FrameLossRule, Instant, InterferenceBurst};
        simkit::FaultPlan::seeded(0xFA17)
            .with_loss(FrameLossRule {
                from: Instant::ZERO,
                until: Instant::from_micros(60_000_000),
                channel: None,
                loss_prob: 0.05,
                corrupt_prob: 0.05,
            })
            .with_fading(FadingEpisode {
                from: Instant::from_micros(2_000_000),
                until: Instant::from_micros(4_000_000),
                extra_loss_db: 6.0,
            })
            .with_burst(InterferenceBurst::duty_cycle(
                9,
                Instant::ZERO,
                simkit::Duration::from_secs(60),
                simkit::Duration::from_millis(50),
                0.2,
                -40.0,
            ))
            .with_drift(DriftExcursion {
                node_label: "phone".into(),
                from: Instant::from_micros(5_000_000),
                until: Instant::from_micros(8_000_000),
                extra_ppm: 200.0,
            })
    }

    #[test]
    fn same_seed_and_fault_plan_reproduce_the_trial_exactly() {
        let mut cfg = TrialConfig::new(46);
        cfg.sim_budget = Duration::from_secs(30);
        cfg.rig.faults = Some(mild_fault_plan());
        let a = run_trial(&cfg);
        let b = run_trial(&cfg);
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(a.sim_seconds, b.sim_seconds);
        assert_eq!(a.effect_observed, b.effect_observed);
        let (ma, mb) = (
            a.metrics.expect("metrics on"),
            b.metrics.expect("metrics on"),
        );
        assert_eq!(ma.events_total, mb.events_total);
    }

    #[test]
    fn empty_fault_plan_is_a_true_no_op() {
        let mut with_empty = TrialConfig::new(47);
        with_empty.sim_budget = Duration::from_secs(30);
        with_empty.rig.faults = Some(simkit::FaultPlan::seeded(999));
        let mut without = with_empty.clone();
        without.rig.faults = None;
        let a = run_trial(&with_empty);
        let b = run_trial(&without);
        assert_eq!(a.attempts, b.attempts, "empty plan must not perturb");
        assert_eq!(a.sim_seconds, b.sim_seconds);
        assert_eq!(a.effect_observed, b.effect_observed);
        let (ma, mb) = (
            a.metrics.expect("metrics on"),
            b.metrics.expect("metrics on"),
        );
        assert_eq!(ma.events_total, mb.events_total);
    }

    #[test]
    fn parallel_trials_survive_a_panicking_trial() {
        // A 300-byte raw payload blows the 255-byte LL limit: the forge path
        // asserts inside the trial. The series must contain the panic,
        // report the seed, and not bring the caller down — and, since the
        // lossy-accounting fix, the panicked trials must be *counted*, not
        // silently absent.
        let mut cfg = TrialConfig::new(99);
        cfg.payload = vec![0xAB; 300];
        let out = run_trials_parallel(&cfg, 2);
        assert!(
            out.outcomes.is_empty(),
            "panicked trials contribute no outcomes"
        );
        assert_eq!(out.requested, 2);
        assert_eq!(out.panicked, 2, "every panicked trial is accounted for");
        // The report row keeps the requested denominator and surfaces the
        // panic count instead of quietly reporting a smaller series.
        let row = crate::SeriesReport::from_series("payload", 300.0, &out);
        assert_eq!(row.trials, 2);
        assert_eq!(row.succeeded, 0);
        assert_eq!(row.panicked_trials, 2);
        // A well-formed series on the same rig still yields every outcome.
        let ok = run_trials_parallel(&TrialConfig::new(99), 2);
        assert_eq!(ok.completed(), 2);
        assert_eq!(ok.panicked, 0);
    }
}
