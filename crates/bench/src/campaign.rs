//! Streaming sharded campaign runner: millions of trials, bounded memory.
//!
//! [`run_trials_parallel`](crate::trial::run_trials_parallel) materialises
//! every [`TrialOutcome`] before any aggregation happens, which caps a
//! series at whatever fits in RAM and loses panicked trials entirely. The
//! campaign runner shards `count` trials into fixed-size chunks, fans the
//! chunks out over worker threads, and folds each outcome into a
//! [`SeriesAccumulator`] **in seed order** the moment its chunk is merged —
//! no `Vec<TrialOutcome>` ever exists.
//!
//! Determinism: workers may finish chunks in any order, but a reorder
//! buffer hands chunks to the single merger strictly in ascending chunk
//! order, and the accumulator folds trials within a chunk in seed order.
//! Every floating-point sum is therefore evaluated in exactly the order the
//! in-memory path ([`SeriesReport::from_outcomes`]) uses, so the final
//! report is byte-identical at a fixed seed regardless of `BENCH_THREADS`.
//!
//! Checkpointing: with [`CampaignConfig::checkpoint`] set, the accumulator
//! plus the next-chunk cursor are appended to a JSONL sidecar every
//! [`CampaignConfig::checkpoint_every_chunks`] merged chunks (and once more
//! when the run stops). A killed campaign resumes from the last complete
//! line without re-running the chunks it covers; `f64` state is stored as
//! IEEE-754 bit patterns so the resumed fold is bit-exact. A sidecar whose
//! header (seed, trial count, chunk size, parameter) does not match the
//! requested campaign is discarded with a warning, never silently merged.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use ble_telemetry::{HistogramUs, SpanKind};

use crate::cli::Cli;
use crate::report::SeriesReport;
use crate::stats::Summary;
use crate::telemetry::{merge_histogram, merge_phase_profile, HistRow, PhaseProfile};
use crate::trial::{run_trial, trial_seed, TrialConfig, TrialOutcome};

/// Default trials per chunk. Large enough that channel/reorder overhead is
/// noise next to a real trial, small enough that a resume re-runs little.
pub const DEFAULT_CHUNK_SIZE: u64 = 256;

/// Default merged-chunk cadence between checkpoint lines.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 16;

/// Worker-thread count for a fan-out over `max` parallelisable units:
/// `BENCH_THREADS` when set (the determinism oracle pins 1 vs. N), else
/// the machine's available parallelism, clamped to `[1, max]`.
pub fn bench_threads(max: u64) -> usize {
    let n = std::env::var("BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });
    n.min(usize::try_from(max).unwrap_or(usize::MAX)).max(1)
}

// ---------------------------------------------------------------------
// Streaming accumulator
// ---------------------------------------------------------------------

/// Incremental fold of [`TrialOutcome`]s into the state a
/// [`SeriesReport`] row needs — the streaming replacement for holding a
/// `Vec<TrialOutcome>`.
///
/// Fold order matters: `f64` addition is not associative, so byte-identity
/// with the in-memory path requires folding trials in seed order. The
/// campaign engine guarantees that; [`SeriesReport::from_outcomes`] is
/// itself implemented as a sequential fold through this type, so the two
/// paths cannot drift apart.
///
/// Memory: everything here is O(1) per trial except `raw`, which keeps one
/// `u32` per *successful* trial because the artefact format publishes the
/// raw attempt counts in seed order. Four bytes per trial is the floor the
/// format imposes — the ~300-byte `TrialOutcome` (inline histograms,
/// phase profiles) is what streaming eliminates.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesAccumulator {
    requested: u64,
    completed: u64,
    panicked: u64,
    raw: Vec<u32>,
    unconfirmed_effects: u64,
    telemetry_downgrades: u64,
    anchor_error: Option<HistogramUs>,
    lead_time: Option<HistogramUs>,
    events_sum: f64,
    events_n: u64,
    phase_profile: Vec<PhaseProfile>,
}

impl SeriesAccumulator {
    /// An empty accumulator for a series of `requested` trials. Report
    /// denominators come from this number, not from how many outcomes
    /// happened to be folded, so panicked trials can never shrink them.
    pub fn new(requested: u64) -> Self {
        SeriesAccumulator {
            requested,
            completed: 0,
            panicked: 0,
            raw: Vec::new(),
            unconfirmed_effects: 0,
            telemetry_downgrades: 0,
            anchor_error: None,
            lead_time: None,
            events_sum: 0.0,
            events_n: 0,
            phase_profile: Vec::new(),
        }
    }

    /// Folds one completed trial. Call in seed order.
    pub fn fold(&mut self, o: &TrialOutcome) {
        self.completed = self.completed.saturating_add(1);
        if let Some(a) = o.attempts {
            self.raw.push(a);
        }
        if let Some(m) = o.metrics.as_ref() {
            merge_histogram(&mut self.anchor_error, m.anchor_error.as_ref());
            merge_histogram(&mut self.lead_time, m.lead_time.as_ref());
            merge_phase_profile(&mut self.phase_profile, &m.phase_profile);
            if m.events_per_sec > 0.0 {
                self.events_sum += m.events_per_sec;
                self.events_n = self.events_n.saturating_add(1);
            }
        }
        if o.unconfirmed_effect() {
            self.unconfirmed_effects = self.unconfirmed_effects.saturating_add(1);
        }
        if o.telemetry_downgraded {
            self.telemetry_downgrades = self.telemetry_downgrades.saturating_add(1);
        }
    }

    /// Folds one panicked trial: first-class data, not a silent gap. The
    /// trial counts against the requested denominator and nowhere else.
    pub fn fold_panicked(&mut self) {
        self.panicked = self.panicked.saturating_add(1);
    }

    /// Trials requested for the series.
    pub fn requested(&self) -> u64 {
        self.requested
    }

    /// Trials folded so far (panicked ones excluded).
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Panicked trials folded so far.
    pub fn panicked(&self) -> u64 {
        self.panicked
    }

    /// Builds the report row for the folded state.
    pub fn report(&self, parameter: &str, value: f64) -> SeriesReport {
        let attempts = if self.raw.is_empty() {
            Summary::empty()
        } else {
            Summary::of(&self.raw)
        };
        SeriesReport {
            parameter: parameter.to_string(),
            value,
            succeeded: self.raw.len() as u64,
            trials: self.requested,
            attempts,
            raw: self.raw.clone(),
            anchor_error_us: self
                .anchor_error
                .as_ref()
                .map(|h| HistRow::from(h.summary())),
            lead_time_us: self.lead_time.as_ref().map(|h| HistRow::from(h.summary())),
            events_per_sec: (self.events_n > 0).then(|| self.events_sum / self.events_n as f64),
            trials_per_sec: 0.0,
            peak_rss_kb: None,
            unconfirmed_effects: self.unconfirmed_effects,
            telemetry_downgrades: self.telemetry_downgrades,
            panicked_trials: self.panicked,
            phase_profile: self.phase_profile.clone(),
            extras: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------
// Chunked engine
// ---------------------------------------------------------------------

/// One chunk's outcomes in trial order; `None` marks a panicked trial.
pub type ChunkOutcomes = Vec<Option<TrialOutcome>>;

/// Shards trials `[start_chunk * chunk_size, count)` into chunks, runs them
/// on worker threads, and hands each chunk to `on_chunk` **strictly in
/// ascending chunk order**. Stops after merging `max_chunks` chunks when
/// set (the kill-and-resume hook). Returns the number of chunks merged.
///
/// All cursors are `u64`: a campaign larger than the platform's `usize`
/// never truncates. The worker→merger channel is *bounded* (a few chunks
/// per worker), so when trials are cheaper than folds the workers block
/// instead of buffering the campaign — live outcomes stay at
/// `O(chunk_size × workers)` regardless of `count`. A single-worker run
/// skips the channel entirely and executes chunks inline on the caller's
/// thread; the fold order is identical either way.
pub(crate) fn run_chunked<F, G>(
    base: &TrialConfig,
    count: u64,
    chunk_size: u64,
    start_chunk: u64,
    max_chunks: Option<u64>,
    runner: &F,
    mut on_chunk: G,
) -> u64
where
    F: Fn(&TrialConfig) -> TrialOutcome + Sync,
    G: FnMut(u64, ChunkOutcomes),
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n_chunks = count.div_ceil(chunk_size);
    let target = n_chunks
        .saturating_sub(start_chunk)
        .min(max_chunks.unwrap_or(u64::MAX));
    if target == 0 {
        return 0;
    }
    // Workers never claim past the merge target, so an early stop wastes at
    // most the chunks already in flight.
    let stop_chunk = start_chunk + target;
    let run_one = |base: &TrialConfig, c: u64| -> ChunkOutcomes {
        let lo = c.saturating_mul(chunk_size);
        let hi = lo.saturating_add(chunk_size).min(count);
        let mut buf: ChunkOutcomes = Vec::with_capacity(usize::try_from(hi - lo).unwrap_or(0));
        for i in lo..hi {
            let mut cfg = base.clone();
            cfg.seed = trial_seed(base.seed, i);
            let seed = cfg.seed;
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| runner(&cfg))) {
                Ok(outcome) => buf.push(Some(outcome)),
                Err(_) => {
                    eprintln!(
                        "[bench] trial {i} (seed {seed}) panicked; \
                         counted as panicked in the series"
                    );
                    buf.push(None);
                }
            }
        }
        buf
    };
    let threads = bench_threads(target);
    let mut merged = 0u64;
    if threads == 1 {
        // Single worker: run chunks inline on the caller's thread. More
        // than a simplification — with a spawned worker the merger
        // allocates concurrently with the sim, which pushes glibc onto
        // extra malloc arenas and inflates peak RSS at every call.
        for c in start_chunk..stop_chunk {
            on_chunk(c, run_one(base, c));
            merged += 1;
        }
        return merged;
    }
    let next = std::sync::atomic::AtomicU64::new(start_chunk);
    // Backpressure: each worker may run at most ~2 chunks ahead of the
    // merger. Without the bound, a cheap runner (the synthetic soak) fills
    // the channel with the whole campaign and RSS scales with `count`.
    let (tx, rx) = std::sync::mpsc::sync_channel::<(u64, ChunkOutcomes)>(threads * 2);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let tx = tx.clone();
            let base = base.clone();
            let run_one = &run_one;
            scope.spawn(move || loop {
                let c = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if c >= stop_chunk {
                    break;
                }
                // A closed channel means the merger stopped early; drop the
                // chunk and exit.
                if tx.send((c, run_one(&base, c))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Single merger: a reorder buffer holds chunks that finished ahead
        // of the cursor (in practice bounded by the worker count) and the
        // callback only ever sees the next chunk in sequence.
        let mut pending: BTreeMap<u64, ChunkOutcomes> = BTreeMap::new();
        let mut want = start_chunk;
        while want < stop_chunk {
            let Ok((c, buf)) = rx.recv() else { break };
            pending.insert(c, buf);
            while let Some(buf) = pending.remove(&want) {
                on_chunk(want, buf);
                want += 1;
                merged += 1;
            }
        }
        drop(rx);
    });
    merged
}

// ---------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------

/// Knobs for one campaign series.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Trials per chunk (scheduling and checkpoint granularity).
    pub chunk_size: u64,
    /// JSONL sidecar for checkpoint/resume; `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Merged chunks between checkpoint lines (a final line is always
    /// written when the run stops, so resume-after-kill only loses work
    /// since the last cadence line).
    pub checkpoint_every_chunks: u64,
    /// Stop after merging this many chunks this invocation — simulates a
    /// mid-campaign kill for resume tests and bounds CI smoke runs.
    pub max_chunks: Option<u64>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            chunk_size: DEFAULT_CHUNK_SIZE,
            checkpoint: None,
            checkpoint_every_chunks: DEFAULT_CHECKPOINT_EVERY,
            max_chunks: None,
        }
    }
}

/// Result of one [`run_campaign`] invocation.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// The series row for everything folded so far (all requested trials
    /// when `finished`, a prefix otherwise).
    pub report: SeriesReport,
    /// Whether every chunk of the campaign has been merged.
    pub finished: bool,
    /// The chunk cursor a checkpoint resumed from, when one was used.
    pub resumed_at_chunk: Option<u64>,
}

/// Runs a campaign of `count` trials of `base` (trial `i` seeded with
/// [`trial_seed`]) through [`run_trial`], streaming outcomes into a
/// [`SeriesAccumulator`] with optional checkpoint/resume.
pub fn run_campaign(
    base: &TrialConfig,
    count: u64,
    parameter: &str,
    value: f64,
    cfg: &CampaignConfig,
) -> CampaignRun {
    run_campaign_with(base, count, parameter, value, cfg, run_trial)
}

/// [`run_campaign`] with an explicit trial runner — the soak and resume
/// tests substitute a cheap deterministic synthetic runner so million-trial
/// campaigns stay affordable.
pub fn run_campaign_with<F>(
    base: &TrialConfig,
    count: u64,
    parameter: &str,
    value: f64,
    cfg: &CampaignConfig,
    runner: F,
) -> CampaignRun
where
    F: Fn(&TrialConfig) -> TrialOutcome + Sync,
{
    assert!(cfg.chunk_size > 0, "chunk_size must be positive");
    let n_chunks = count.div_ceil(cfg.chunk_size);
    let header = CampaignHeader {
        seed: base.seed,
        count,
        chunk_size: cfg.chunk_size,
        parameter: parameter.to_string(),
        value,
    };
    let mut acc = SeriesAccumulator::new(count);
    let mut start_chunk = 0u64;
    let mut resumed_at_chunk = None;
    if let Some(path) = cfg.checkpoint.as_deref() {
        match load_checkpoint(path, &header) {
            Loaded::Resume(next, loaded) => {
                eprintln!(
                    "[campaign] {parameter}={value}: resuming at chunk {next}/{n_chunks} \
                     from {}",
                    path.display()
                );
                acc = *loaded;
                start_chunk = next;
                resumed_at_chunk = Some(next);
            }
            Loaded::Fresh => {}
            Loaded::Mismatch => {
                eprintln!(
                    "[campaign] {parameter}={value}: checkpoint {} belongs to a \
                     different campaign (seed/count/chunk-size/parameter); starting fresh",
                    path.display()
                );
                if let Err(err) = std::fs::write(path, b"") {
                    eprintln!(
                        "[campaign] warning: could not reset {}: {err}",
                        path.display()
                    );
                }
            }
        }
    }
    let cadence = cfg.checkpoint_every_chunks.max(1);
    let mut merged_this_run = 0u64;
    let merged = run_chunked(
        base,
        count,
        cfg.chunk_size,
        start_chunk,
        cfg.max_chunks,
        &runner,
        |c, buf| {
            for slot in &buf {
                match slot {
                    Some(outcome) => acc.fold(outcome),
                    None => acc.fold_panicked(),
                }
            }
            merged_this_run += 1;
            if merged_this_run.is_multiple_of(cadence) {
                if let Some(path) = cfg.checkpoint.as_deref() {
                    write_checkpoint(path, &header, c + 1, &acc);
                }
            }
        },
    );
    let next = start_chunk + merged;
    let finished = next >= n_chunks;
    // Always leave a line at the exact stop point (unless nothing ran and
    // the campaign was already complete), so an interrupted run resumes
    // without redoing merged chunks.
    if merged > 0 || start_chunk == 0 {
        if let Some(path) = cfg.checkpoint.as_deref() {
            write_checkpoint(path, &header, next, &acc);
        }
    }
    if !finished {
        eprintln!(
            "[campaign] {parameter}={value}: stopped after {merged} chunk(s); \
             next chunk {next}/{n_chunks}"
        );
    }
    CampaignRun {
        report: acc.report(parameter, value),
        finished,
        resumed_at_chunk,
    }
}

/// Sidecar path for one campaign series point.
pub fn checkpoint_path(dir: Option<&Path>, exp: &str, parameter: &str, value: f64) -> PathBuf {
    let dir = dir
        .map(Path::to_path_buf)
        .unwrap_or_else(|| crate::report::artefact_dir().join("campaigns"));
    dir.join(format!("{exp}_{parameter}_{value}.jsonl"))
}

/// Runs one sweep point the way every experiment binary does: the
/// streaming campaign path under `--campaign`, the in-memory
/// [`run_trials_parallel`](crate::trial::run_trials_parallel) path
/// otherwise — the two produce byte-identical rows at a fixed seed — and
/// prices the row's wall-clock throughput either way.
pub fn run_point(
    cli: &Cli,
    exp: &str,
    parameter: &str,
    value: f64,
    base: &TrialConfig,
) -> SeriesReport {
    let row_start = crate::wallclock::Stopwatch::start();
    let report = if cli.campaign {
        let ccfg = CampaignConfig {
            chunk_size: cli.chunk_size.unwrap_or(DEFAULT_CHUNK_SIZE),
            checkpoint: Some(checkpoint_path(
                cli.checkpoint_dir.as_deref(),
                exp,
                parameter,
                value,
            )),
            checkpoint_every_chunks: DEFAULT_CHECKPOINT_EVERY,
            max_chunks: cli.campaign_max_chunks,
        };
        run_campaign(base, cli.trials, parameter, value, &ccfg).report
    } else {
        let series = crate::trial::run_trials_parallel(base, cli.trials);
        SeriesReport::from_series(parameter, value, &series)
    };
    report.with_throughput(row_start.elapsed_s())
}

// ---------------------------------------------------------------------
// Checkpoint sidecar (JSONL, hand-rolled like the artefact writer)
// ---------------------------------------------------------------------

/// Identity of a campaign: a checkpoint line only resumes a campaign whose
/// header matches all of these (value compared by bit pattern).
#[derive(Debug, Clone, PartialEq)]
struct CampaignHeader {
    seed: u64,
    count: u64,
    chunk_size: u64,
    parameter: String,
    value: f64,
}

/// Sidecar format version.
const CHECKPOINT_VERSION: u64 = 1;

fn f64_bits_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn f64_from_bits_hex(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn hist_checkpoint_json(h: Option<&HistogramUs>) -> String {
    let Some(h) = h else {
        return "null".to_string();
    };
    let bounds: Vec<String> = h
        .bounds()
        .iter()
        .map(|b| format!("\"{}\"", f64_bits_hex(*b)))
        .collect();
    let counts: Vec<String> = h.bucket_counts().iter().map(u64::to_string).collect();
    format!(
        "{{\"bounds_bits\":[{}],\"counts\":[{}],\"count\":{},\"sum_bits\":\"{}\",\
         \"min_bits\":\"{}\",\"max_bits\":\"{}\"}}",
        bounds.join(","),
        counts.join(","),
        h.count(),
        f64_bits_hex(h.sum()),
        f64_bits_hex(h.min_value()),
        f64_bits_hex(h.max_value()),
    )
}

fn checkpoint_line(header: &CampaignHeader, next_chunk: u64, acc: &SeriesAccumulator) -> String {
    debug_assert!(
        !header.parameter.contains(['"', '\\']),
        "parameter names are plain identifiers"
    );
    let raw: Vec<String> = acc.raw.iter().map(u32::to_string).collect();
    let phases: Vec<String> = acc
        .phase_profile
        .iter()
        .map(|p| {
            format!(
                "{{\"phase\":\"{}\",\"count\":{},\"sim_ns\":{},\"self_sim_ns\":{},\
                 \"wall_ns\":{},\"self_wall_ns\":{}}}",
                p.phase, p.count, p.sim_ns, p.self_sim_ns, p.wall_ns, p.self_wall_ns
            )
        })
        .collect();
    format!(
        "{{\"v\":{CHECKPOINT_VERSION},\"seed\":{},\"count\":{},\"chunk_size\":{},\
         \"parameter\":\"{}\",\"value_bits\":\"{}\",\"next_chunk\":{next_chunk},\
         \"acc\":{{\"requested\":{},\"completed\":{},\"panicked\":{},\
         \"unconfirmed\":{},\"downgrades\":{},\"events_n\":{},\"events_sum_bits\":\"{}\",\
         \"raw\":[{}],\"anchor\":{},\"lead\":{},\"phases\":[{}]}}}}",
        header.seed,
        header.count,
        header.chunk_size,
        header.parameter,
        f64_bits_hex(header.value),
        acc.requested,
        acc.completed,
        acc.panicked,
        acc.unconfirmed_effects,
        acc.telemetry_downgrades,
        acc.events_n,
        f64_bits_hex(acc.events_sum),
        raw.join(","),
        hist_checkpoint_json(acc.anchor_error.as_ref()),
        hist_checkpoint_json(acc.lead_time.as_ref()),
        phases.join(","),
    )
}

/// Appends one checkpoint line; failures warn on stderr but never bring the
/// campaign down (a checkpoint is an optimisation, not a result).
fn write_checkpoint(
    path: &Path,
    header: &CampaignHeader,
    next_chunk: u64,
    acc: &SeriesAccumulator,
) {
    let write = || -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let mut line = checkpoint_line(header, next_chunk, acc);
        line.push('\n');
        file.write_all(line.as_bytes())
    };
    if let Err(err) = write() {
        eprintln!(
            "[campaign] warning: could not write checkpoint {}: {err}",
            path.display()
        );
    }
}

enum Loaded {
    /// No usable sidecar: start from chunk 0.
    Fresh,
    /// Resume at this chunk cursor with this accumulator state (boxed so
    /// the no-checkpoint variants stay pointer-sized).
    Resume(u64, Box<SeriesAccumulator>),
    /// The sidecar exists and parses, but describes a different campaign.
    Mismatch,
}

/// Reads the sidecar and returns the **last** line whose header matches.
/// Torn or corrupt lines (a kill mid-append) are skipped — the previous
/// complete line still resumes the campaign.
fn load_checkpoint(path: &Path, header: &CampaignHeader) -> Loaded {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Loaded::Fresh;
    };
    let mut best: Option<(u64, SeriesAccumulator)> = None;
    let mut saw_any_valid = false;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some(val) = json::parse(line) else {
            continue;
        };
        let Some(obj) = val.as_obj() else { continue };
        saw_any_valid = true;
        if !header_matches(obj, header) {
            continue;
        }
        let Some(next_chunk) = json::get(obj, "next_chunk").and_then(json::Val::as_u64) else {
            continue;
        };
        let Some(acc) = json::get(obj, "acc").and_then(|v| acc_from_json(v, header)) else {
            continue;
        };
        best = Some((next_chunk, acc));
    }
    match best {
        Some((next, acc)) => Loaded::Resume(next, Box::new(acc)),
        None if saw_any_valid => Loaded::Mismatch,
        None => Loaded::Fresh,
    }
}

fn header_matches(obj: &[(String, json::Val)], header: &CampaignHeader) -> bool {
    json::get(obj, "v").and_then(json::Val::as_u64) == Some(CHECKPOINT_VERSION)
        && json::get(obj, "seed").and_then(json::Val::as_u64) == Some(header.seed)
        && json::get(obj, "count").and_then(json::Val::as_u64) == Some(header.count)
        && json::get(obj, "chunk_size").and_then(json::Val::as_u64) == Some(header.chunk_size)
        && json::get(obj, "parameter").and_then(json::Val::as_str)
            == Some(header.parameter.as_str())
        && json::get(obj, "value_bits").and_then(json::Val::as_str)
            == Some(f64_bits_hex(header.value).as_str())
}

fn hist_from_json(v: &json::Val) -> Option<Option<HistogramUs>> {
    if v.is_null() {
        return Some(None);
    }
    let obj = v.as_obj()?;
    let bounds: Vec<f64> = json::get(obj, "bounds_bits")?
        .as_arr()?
        .iter()
        .map(|b| b.as_str().and_then(f64_from_bits_hex))
        .collect::<Option<_>>()?;
    let counts: Vec<u64> = json::get(obj, "counts")?
        .as_arr()?
        .iter()
        .map(json::Val::as_u64)
        .collect::<Option<_>>()?;
    let count = json::get(obj, "count")?.as_u64()?;
    let sum = json::get(obj, "sum_bits")?
        .as_str()
        .and_then(f64_from_bits_hex)?;
    let min = json::get(obj, "min_bits")?
        .as_str()
        .and_then(f64_from_bits_hex)?;
    let max = json::get(obj, "max_bits")?
        .as_str()
        .and_then(f64_from_bits_hex)?;
    Some(Some(HistogramUs::from_parts(
        bounds, counts, count, sum, min, max,
    )?))
}

fn acc_from_json(v: &json::Val, header: &CampaignHeader) -> Option<SeriesAccumulator> {
    let obj = v.as_obj()?;
    let requested = json::get(obj, "requested")?.as_u64()?;
    if requested != header.count {
        return None;
    }
    let completed = json::get(obj, "completed")?.as_u64()?;
    let panicked = json::get(obj, "panicked")?.as_u64()?;
    let raw: Vec<u32> = json::get(obj, "raw")?
        .as_arr()?
        .iter()
        .map(json::Val::as_u32)
        .collect::<Option<_>>()?;
    if (raw.len() as u64) > completed {
        return None;
    }
    let mut phase_profile = Vec::new();
    for p in json::get(obj, "phases")?.as_arr()? {
        let p = p.as_obj()?;
        // Resolve the phase name back to its `&'static str`; an unknown
        // name means the sidecar came from an incompatible build.
        let kind = SpanKind::parse(json::get(p, "phase")?.as_str()?)?;
        phase_profile.push(PhaseProfile {
            phase: kind.as_str(),
            count: json::get(p, "count")?.as_u64()?,
            sim_ns: json::get(p, "sim_ns")?.as_u64()?,
            self_sim_ns: json::get(p, "self_sim_ns")?.as_u64()?,
            wall_ns: json::get(p, "wall_ns")?.as_u64()?,
            self_wall_ns: json::get(p, "self_wall_ns")?.as_u64()?,
        });
    }
    Some(SeriesAccumulator {
        requested,
        completed,
        panicked,
        raw,
        unconfirmed_effects: json::get(obj, "unconfirmed")?.as_u64()?,
        telemetry_downgrades: json::get(obj, "downgrades")?.as_u64()?,
        anchor_error: hist_from_json(json::get(obj, "anchor")?)?,
        lead_time: hist_from_json(json::get(obj, "lead")?)?,
        events_sum: json::get(obj, "events_sum_bits")?
            .as_str()
            .and_then(f64_from_bits_hex)?,
        events_n: json::get(obj, "events_n")?.as_u64()?,
        phase_profile,
    })
}

/// Minimal JSON reader for the checkpoint sidecar. Numbers keep their raw
/// token so `u64` values round-trip exactly (a shared `f64` representation
/// would corrupt large seeds); the perfgate gate has a cousin of this
/// reader for artefact comparison.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Val {
        Null,
        Bool(bool),
        Num(String),
        Str(String),
        Arr(Vec<Val>),
        Obj(Vec<(String, Val)>),
    }

    impl Val {
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Val::Num(s) => s.parse().ok(),
                _ => None,
            }
        }

        pub fn as_u32(&self) -> Option<u32> {
            match self {
                Val::Num(s) => s.parse().ok(),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Val::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_arr(&self) -> Option<&[Val]> {
            match self {
                Val::Arr(v) => Some(v),
                _ => None,
            }
        }

        pub fn as_obj(&self) -> Option<&[(String, Val)]> {
            match self {
                Val::Obj(v) => Some(v),
                _ => None,
            }
        }

        pub fn is_null(&self) -> bool {
            matches!(self, Val::Null)
        }
    }

    /// First value for `key` in an object's entry list.
    pub fn get<'a>(obj: &'a [(String, Val)], key: &str) -> Option<&'a Val> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Parses one complete JSON value; `None` on any malformation
    /// (including trailing garbage) — a torn checkpoint line must never
    /// half-parse.
    pub fn parse(text: &str) -> Option<Val> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let val = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return None;
        }
        Some(val)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while b.get(*pos).is_some_and(|c| c.is_ascii_whitespace()) {
            *pos += 1;
        }
    }

    fn eat(b: &[u8], pos: &mut usize, c: u8) -> Option<()> {
        skip_ws(b, pos);
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Option<Val> {
        skip_ws(b, pos);
        match b.get(*pos)? {
            b'{' => parse_obj(b, pos),
            b'[' => parse_arr(b, pos),
            b'"' => parse_str(b, pos).map(Val::Str),
            b'n' => parse_lit(b, pos, "null", Val::Null),
            b't' => parse_lit(b, pos, "true", Val::Bool(true)),
            b'f' => parse_lit(b, pos, "false", Val::Bool(false)),
            _ => parse_num(b, pos),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, val: Val) -> Option<Val> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Some(val)
        } else {
            None
        }
    }

    fn parse_num(b: &[u8], pos: &mut usize) -> Option<Val> {
        let start = *pos;
        while b
            .get(*pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            *pos += 1;
        }
        if *pos == start {
            return None;
        }
        let s = std::str::from_utf8(&b[start..*pos]).ok()?;
        // Must at least parse as a float to count as a number token.
        s.parse::<f64>().ok()?;
        Some(Val::Num(s.to_string()))
    }

    fn parse_str(b: &[u8], pos: &mut usize) -> Option<String> {
        eat(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos)? {
                b'"' => {
                    *pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        // The writer emits no other escapes.
                        _ => return None,
                    }
                    *pos += 1;
                }
                _ => {
                    // Collect a maximal run of plain bytes (valid UTF-8 by
                    // construction: the input is a &str).
                    let start = *pos;
                    while b.get(*pos).is_some_and(|c| *c != b'"' && *c != b'\\') {
                        *pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&b[start..*pos]).ok()?);
                }
            }
        }
    }

    fn parse_arr(b: &[u8], pos: &mut usize) -> Option<Val> {
        eat(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Some(Val::Arr(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos)? {
                b',' => *pos += 1,
                b']' => {
                    *pos += 1;
                    return Some(Val::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn parse_obj(b: &[u8], pos: &mut usize) -> Option<Val> {
        eat(b, pos, b'{')?;
        let mut entries = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Some(Val::Obj(entries));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_str(b, pos)?;
            eat(b, pos, b':')?;
            let val = parse_value(b, pos)?;
            entries.push((key, val));
            skip_ws(b, pos);
            match b.get(*pos)? {
                b',' => *pos += 1,
                b'}' => {
                    *pos += 1;
                    return Some(Val::Obj(entries));
                }
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::TrialMetrics;

    /// Cheap deterministic synthetic outcome: a splitmix64-style scramble
    /// of the trial seed decides success, attempts and a metric block.
    fn synth_outcome(cfg: &TrialConfig) -> TrialOutcome {
        let mut x = cfg.seed;
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let attempts = (!x.is_multiple_of(16)).then_some(u32::try_from(x % 50).unwrap_or(0) + 1);
        let mut lead = HistogramUs::default();
        lead.record((x % 200) as f64);
        let metrics = TrialMetrics {
            events_total: x % 1000,
            events_per_sec: (x % 1000) as f64 / 3.0,
            lead_time: Some(lead),
            ..TrialMetrics::default()
        };
        TrialOutcome {
            attempts,
            sim_seconds: (x % 500) as f64 / 10.0,
            effect_observed: attempts.is_some(),
            metrics: Some(metrics),
            telemetry_downgraded: false,
        }
    }

    fn base_cfg(seed: u64) -> TrialConfig {
        TrialConfig::new(seed)
    }

    #[test]
    fn engine_merges_chunks_in_order_and_respects_max_chunks() {
        let base = base_cfg(11);
        let mut seen = Vec::new();
        let merged = run_chunked(&base, 103, 10, 0, None, &synth_outcome, |c, buf| {
            seen.push((c, buf.len()));
        });
        assert_eq!(merged, 11);
        let chunks: Vec<u64> = seen.iter().map(|(c, _)| *c).collect();
        assert_eq!(chunks, (0..11).collect::<Vec<_>>(), "ascending chunk order");
        assert_eq!(seen.last(), Some(&(10, 3)), "tail chunk is short");
        // An early stop merges exactly `max_chunks` chunks...
        let merged = run_chunked(&base, 103, 10, 0, Some(4), &synth_outcome, |_, _| {});
        assert_eq!(merged, 4);
        // ...and a resume picks up the remainder.
        let merged = run_chunked(&base, 103, 10, 4, None, &synth_outcome, |_, _| {});
        assert_eq!(merged, 7);
        // A fully-consumed campaign runs nothing.
        assert_eq!(
            run_chunked(&base, 103, 10, 11, None, &synth_outcome, |_, _| {}),
            0
        );
    }

    #[test]
    fn accumulator_report_matches_the_in_memory_path() {
        let base = base_cfg(77);
        let outcomes: Vec<TrialOutcome> = (0..57)
            .map(|i| {
                let mut cfg = base.clone();
                cfg.seed = trial_seed(base.seed, i);
                synth_outcome(&cfg)
            })
            .collect();
        let expected = SeriesReport::from_outcomes("p", 4.0, &outcomes);
        let mut acc = SeriesAccumulator::new(57);
        for o in &outcomes {
            acc.fold(o);
        }
        let got = acc.report("p", 4.0);
        assert_eq!(
            crate::report::rows_to_json(&[got]),
            crate::report::rows_to_json(&[expected])
        );
    }

    #[test]
    fn campaign_equals_in_memory_fold_regardless_of_chunk_size() {
        let base = base_cfg(5);
        let outcomes: Vec<TrialOutcome> = (0..101)
            .map(|i| {
                let mut cfg = base.clone();
                cfg.seed = trial_seed(base.seed, i);
                synth_outcome(&cfg)
            })
            .collect();
        let expected =
            crate::report::rows_to_json(&[SeriesReport::from_outcomes("p", 1.0, &outcomes)]);
        for chunk_size in [1u64, 7, 64, 200] {
            let cfg = CampaignConfig {
                chunk_size,
                ..CampaignConfig::default()
            };
            let run = run_campaign_with(&base, 101, "p", 1.0, &cfg, synth_outcome);
            assert!(run.finished);
            assert_eq!(
                crate::report::rows_to_json(&[run.report]),
                expected,
                "chunk_size {chunk_size}"
            );
        }
    }

    #[test]
    fn f64_bit_hex_round_trips_exactly() {
        for v in [0.0, -0.0, 1.5, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300] {
            let enc = f64_bits_hex(v);
            assert_eq!(f64_from_bits_hex(&enc).map(f64::to_bits), Some(v.to_bits()));
        }
        assert_eq!(f64_from_bits_hex("xyz"), None);
        assert_eq!(f64_from_bits_hex("00"), None);
    }

    #[test]
    fn checkpoint_line_round_trips_the_accumulator() {
        let base = base_cfg(9);
        let mut acc = SeriesAccumulator::new(40);
        for i in 0..30 {
            let mut cfg = base.clone();
            cfg.seed = trial_seed(base.seed, i);
            acc.fold(&synth_outcome(&cfg));
        }
        acc.fold_panicked();
        // A phase row exercises the SpanKind name round-trip.
        merge_phase_profile(
            &mut acc.phase_profile,
            &[PhaseProfile {
                phase: "trial-sync",
                count: 3,
                sim_ns: 100,
                self_sim_ns: 90,
                wall_ns: 5,
                self_wall_ns: 4,
            }],
        );
        let header = CampaignHeader {
            seed: 9,
            count: 40,
            chunk_size: 8,
            parameter: "p".into(),
            value: 2.5,
        };
        let line = checkpoint_line(&header, 4, &acc);
        let val = json::parse(&line).expect("checkpoint line parses");
        let obj = val.as_obj().unwrap();
        assert!(header_matches(obj, &header));
        assert_eq!(json::get(obj, "next_chunk").unwrap().as_u64(), Some(4));
        let decoded = acc_from_json(json::get(obj, "acc").unwrap(), &header).unwrap();
        assert_eq!(decoded, acc);
    }

    #[test]
    fn load_checkpoint_takes_the_last_line_and_skips_torn_tails() {
        let dir = std::env::temp_dir().join("bench-campaign-test-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sidecar.jsonl");
        let header = CampaignHeader {
            seed: 3,
            count: 20,
            chunk_size: 5,
            parameter: "p".into(),
            value: 1.0,
        };
        let mut acc = SeriesAccumulator::new(20);
        write_checkpoint(&path, &header, 1, &acc);
        acc.fold(&synth_outcome(&base_cfg(3)));
        write_checkpoint(&path, &header, 2, &acc);
        // Simulate a kill mid-append: a torn final line.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"{\"v\":1,\"seed\":3,\"count\":20,\"chu")
                .unwrap();
        }
        match load_checkpoint(&path, &header) {
            Loaded::Resume(next, loaded) => {
                assert_eq!(next, 2);
                assert_eq!(*loaded, acc);
            }
            _ => panic!("expected resume from the last complete line"),
        }
        // A different campaign must refuse the sidecar.
        let other = CampaignHeader {
            seed: 4,
            ..header.clone()
        };
        assert!(matches!(load_checkpoint(&path, &other), Loaded::Mismatch));
        // A missing file is a fresh start, not an error.
        assert!(matches!(
            load_checkpoint(&dir.join("absent.jsonl"), &header),
            Loaded::Fresh
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interrupted_campaign_resumes_without_rerunning_chunks() {
        let dir = std::env::temp_dir().join("bench-campaign-test-resume");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.jsonl");
        std::fs::remove_file(&path).ok();
        let base = base_cfg(21);
        let full_cfg = CampaignConfig {
            chunk_size: 10,
            ..CampaignConfig::default()
        };
        let uninterrupted = run_campaign_with(&base, 95, "p", 3.0, &full_cfg, synth_outcome);
        assert!(uninterrupted.finished);
        // First invocation stops after 3 of 10 chunks.
        let mut cfg = CampaignConfig {
            chunk_size: 10,
            checkpoint: Some(path.clone()),
            checkpoint_every_chunks: 2,
            max_chunks: Some(3),
        };
        let first = run_campaign_with(&base, 95, "p", 3.0, &cfg, synth_outcome);
        assert!(!first.finished);
        assert_eq!(first.resumed_at_chunk, None);
        assert_eq!(first.report.trials, 95, "denominator stays requested");
        // Second invocation resumes at chunk 3 and finishes.
        cfg.max_chunks = None;
        let resumed = run_campaign_with(&base, 95, "p", 3.0, &cfg, synth_outcome);
        assert!(resumed.finished);
        assert_eq!(resumed.resumed_at_chunk, Some(3));
        assert_eq!(
            crate::report::rows_to_json(&[resumed.report]),
            crate::report::rows_to_json(&[uninterrupted.report]),
            "resumed campaign must be byte-identical to an uninterrupted one"
        );
        // A third invocation sees the completed checkpoint and runs nothing.
        let done = run_campaign_with(&base, 95, "p", 3.0, &cfg, synth_outcome);
        assert!(done.finished);
        assert_eq!(done.resumed_at_chunk, Some(10));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_sidecar_starts_fresh_and_resets_the_file() {
        let dir = std::env::temp_dir().join("bench-campaign-test-mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mismatch.jsonl");
        std::fs::remove_file(&path).ok();
        let base = base_cfg(31);
        let cfg = CampaignConfig {
            chunk_size: 10,
            checkpoint: Some(path.clone()),
            ..CampaignConfig::default()
        };
        let first = run_campaign_with(&base, 40, "p", 1.0, &cfg, synth_outcome);
        assert!(first.finished);
        // Same sidecar, different seed: must not resume, must still finish.
        let other = base_cfg(32);
        let second = run_campaign_with(&other, 40, "p", 1.0, &cfg, synth_outcome);
        assert!(second.finished);
        assert_eq!(second.resumed_at_chunk, None);
        assert_eq!(second.report.trials, 40);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn panicking_trials_are_first_class_campaign_data() {
        let base = base_cfg(51);
        let panicky = |cfg: &TrialConfig| -> TrialOutcome {
            if cfg.seed.is_multiple_of(3) {
                panic!("synthetic trial failure");
            }
            synth_outcome(cfg)
        };
        // Silence the default panic hook for the duration: the panics here
        // are the fixture, not noise worth printing backtraces for.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let run = run_campaign_with(&base, 30, "p", 1.0, &CampaignConfig::default(), panicky);
        std::panic::set_hook(prev);
        assert!(run.finished);
        let expected_panics = (0..30)
            .filter(|&i| trial_seed(51, i).is_multiple_of(3))
            .count() as u64;
        assert!(expected_panics > 0, "fixture must actually panic");
        assert_eq!(run.report.panicked_trials, expected_panics);
        assert_eq!(run.report.trials, 30, "denominator is requested trials");
        assert_eq!(
            run.report.succeeded as usize,
            run.report.raw.len(),
            "panicked trials never contribute attempts"
        );
    }

    #[test]
    fn bench_threads_clamps_to_the_unit_count() {
        assert_eq!(bench_threads(1), 1);
        assert!(bench_threads(u64::MAX) >= 1);
    }

    #[test]
    fn checkpoint_paths_are_stable_per_point() {
        let p = checkpoint_path(Some(Path::new("/tmp/cp")), "exp1", "hop_interval", 25.0);
        assert_eq!(p, Path::new("/tmp/cp/exp1_hop_interval_25.jsonl"));
        let default = checkpoint_path(None, "exp1", "hop_interval", 25.0);
        assert!(default.ends_with("campaigns/exp1_hop_interval_25.jsonl"));
    }
}
