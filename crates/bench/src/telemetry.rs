//! Per-trial telemetry capture: sink selection, phase timing and the
//! metric block that rides along in experiment report rows.

use ble_telemetry::{HistSummary, HistogramUs, MetricsRegistry};
use serde::Serialize;

pub use ble_scenario::TelemetryMode;

/// Histogram summary in the shape report rows serialise (µs units).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct HistRow {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (bucket upper-bound estimate).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl From<HistSummary> for HistRow {
    fn from(s: HistSummary) -> Self {
        HistRow {
            count: s.count,
            mean: s.mean,
            p50: s.p50,
            p90: s.p90,
            p99: s.p99,
            min: s.min,
            max: s.max,
        }
    }
}

/// Metrics extracted from one trial's registry after the run.
#[derive(Debug, Clone, Default)]
pub struct TrialMetrics {
    /// Anchor-prediction-error histogram (µs magnitudes, attacker side).
    pub anchor_error: Option<HistogramUs>,
    /// Injection lead-time histogram (µs before the predicted anchor).
    pub lead_time: Option<HistogramUs>,
    /// Observed Slave-response IFS deviation histogram (µs).
    pub ifs_delta: Option<HistogramUs>,
    /// Total telemetry events emitted during the trial.
    pub events_total: u64,
    /// Telemetry events per wall-clock second over the whole trial.
    pub events_per_sec: f64,
    /// Wall-clock seconds spent in the synchronisation phase.
    pub sync_wall_s: f64,
    /// Wall-clock seconds spent in the attack phase.
    pub attack_wall_s: f64,
}

impl TrialMetrics {
    /// Builds the per-trial block from a registry snapshot and the two
    /// experiment-phase wall-clock timings.
    pub fn from_registry(reg: &MetricsRegistry, sync_wall_s: f64, attack_wall_s: f64) -> Self {
        let events_total = reg.counter("telemetry.events");
        let wall = (sync_wall_s + attack_wall_s).max(1e-9);
        TrialMetrics {
            anchor_error: reg.histogram("attack.anchor_error_us").cloned(),
            lead_time: reg.histogram("attack.lead_us").cloned(),
            ifs_delta: reg.histogram("attack.ifs_delta_us").cloned(),
            events_total,
            events_per_sec: events_total as f64 / wall,
            sync_wall_s,
            attack_wall_s,
        }
    }
}

/// Merges an optional histogram into an accumulator (used when collapsing
/// per-trial metrics into one report row). Ignores empty or layout-mismatched
/// histograms.
pub fn merge_histogram(acc: &mut Option<HistogramUs>, h: Option<&HistogramUs>) {
    let Some(h) = h else { return };
    if h.is_empty() {
        return;
    }
    match acc {
        Some(a) => {
            let _ = a.merge(h);
        }
        None => *acc = Some(h.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_metrics_from_registry() {
        let mut reg = MetricsRegistry::new();
        reg.add("telemetry.events", 500);
        reg.observe_us("attack.lead_us", 36.0);
        reg.observe_us("attack.anchor_error_us", 4.0);
        let m = TrialMetrics::from_registry(&reg, 1.0, 1.0);
        assert_eq!(m.events_total, 500);
        assert!((m.events_per_sec - 250.0).abs() < 1e-9);
        assert_eq!(m.lead_time.as_ref().map(HistogramUs::count), Some(1));
        assert_eq!(m.anchor_error.as_ref().map(HistogramUs::count), Some(1));
        assert!(m.ifs_delta.is_none());
    }

    #[test]
    fn merge_histogram_accumulates() {
        let mut a = HistogramUs::default();
        a.record(10.0);
        let mut b = HistogramUs::default();
        b.record(20.0);
        let mut acc = None;
        merge_histogram(&mut acc, Some(&a));
        merge_histogram(&mut acc, Some(&b));
        merge_histogram(&mut acc, None);
        assert_eq!(acc.map(|h| h.count()), Some(2));
    }
}
