//! Per-trial telemetry capture: sink selection, phase timing and the
//! metric block that rides along in experiment report rows.

use ble_telemetry::{HistSummary, HistogramUs, MetricsRegistry, SpanKind};
use serde::Serialize;

pub use ble_scenario::TelemetryMode;

/// Histogram summary in the shape report rows serialise (µs units).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct HistRow {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (bucket upper-bound estimate).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl From<HistSummary> for HistRow {
    fn from(s: HistSummary) -> Self {
        HistRow {
            count: s.count,
            mean: s.mean,
            p50: s.p50,
            p90: s.p90,
            p95: s.p95,
            p99: s.p99,
            min: s.min,
            max: s.max,
        }
    }
}

/// Per-phase span attribution: one row per [`SpanKind`] that closed at
/// least once during a trial (or a series, after merging).
///
/// Sim-time fields are deterministic (byte-identical across equally-seeded
/// runs); the wall-clock fields come from the quarantined span clock and
/// are excluded from byte-identity (`cargo xtask determinism` neutralises
/// `wall_ns`/`self_wall_ns` like `trials_per_sec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseProfile {
    /// The span kind's wire name (e.g. `"trial-sync"`).
    pub phase: &'static str,
    /// Closed spans of this kind.
    pub count: u64,
    /// Total simulation nanoseconds.
    pub sim_ns: u64,
    /// Simulation nanoseconds net of child spans.
    pub self_sim_ns: u64,
    /// Total wall-clock nanoseconds.
    pub wall_ns: u64,
    /// Wall-clock nanoseconds net of child spans.
    pub self_wall_ns: u64,
}

/// Extracts the per-phase profile from a registry's `span.*` counters, in
/// [`SpanKind::ALL`] order, skipping kinds that never closed a span.
pub fn phase_profile_from_registry(reg: &MetricsRegistry) -> Vec<PhaseProfile> {
    SpanKind::ALL
        .into_iter()
        .filter_map(|kind| {
            let names = kind.metric_names();
            let count = reg.counter(names.count);
            if count == 0 {
                return None;
            }
            Some(PhaseProfile {
                phase: kind.as_str(),
                count,
                sim_ns: reg.counter(names.sim_ns),
                self_sim_ns: reg.counter(names.self_sim_ns),
                wall_ns: reg.counter(names.wall_ns),
                self_wall_ns: reg.counter(names.self_wall_ns),
            })
        })
        .collect()
}

/// Folds one trial's phase rows into a series accumulator (rows keyed by
/// phase name; counts and durations add).
pub fn merge_phase_profile(acc: &mut Vec<PhaseProfile>, rows: &[PhaseProfile]) {
    for row in rows {
        match acc.iter_mut().find(|a| a.phase == row.phase) {
            Some(a) => {
                a.count = a.count.saturating_add(row.count);
                a.sim_ns = a.sim_ns.saturating_add(row.sim_ns);
                a.self_sim_ns = a.self_sim_ns.saturating_add(row.self_sim_ns);
                a.wall_ns = a.wall_ns.saturating_add(row.wall_ns);
                a.self_wall_ns = a.self_wall_ns.saturating_add(row.self_wall_ns);
            }
            None => acc.push(*row),
        }
    }
    // Keep a canonical phase order regardless of which trial introduced a
    // kind first (artefact bytes must not depend on per-trial span sets).
    acc.sort_by_key(|r| {
        SpanKind::parse(r.phase)
            .map(SpanKind::index)
            .unwrap_or(usize::MAX)
    });
}

/// Metrics extracted from one trial's registry after the run.
#[derive(Debug, Clone, Default)]
pub struct TrialMetrics {
    /// Anchor-prediction-error histogram (µs magnitudes, attacker side).
    pub anchor_error: Option<HistogramUs>,
    /// Injection lead-time histogram (µs before the predicted anchor).
    pub lead_time: Option<HistogramUs>,
    /// Observed Slave-response IFS deviation histogram (µs).
    pub ifs_delta: Option<HistogramUs>,
    /// Total telemetry events emitted during the trial.
    pub events_total: u64,
    /// Telemetry events per wall-clock second over the whole trial.
    pub events_per_sec: f64,
    /// Wall-clock seconds spent in the synchronisation phase.
    pub sync_wall_s: f64,
    /// Wall-clock seconds spent in the attack phase.
    pub attack_wall_s: f64,
    /// Per-phase span attribution (empty when spans never closed, e.g.
    /// telemetry off).
    pub phase_profile: Vec<PhaseProfile>,
}

impl TrialMetrics {
    /// Builds the per-trial block from a registry snapshot and the two
    /// experiment-phase wall-clock timings.
    pub fn from_registry(reg: &MetricsRegistry, sync_wall_s: f64, attack_wall_s: f64) -> Self {
        let events_total = reg.counter("telemetry.events");
        let wall = (sync_wall_s + attack_wall_s).max(1e-9);
        TrialMetrics {
            anchor_error: reg.histogram("attack.anchor_error_us").cloned(),
            lead_time: reg.histogram("attack.lead_us").cloned(),
            ifs_delta: reg.histogram("attack.ifs_delta_us").cloned(),
            events_total,
            events_per_sec: events_total as f64 / wall,
            sync_wall_s,
            attack_wall_s,
            phase_profile: phase_profile_from_registry(reg),
        }
    }
}

/// Merges an optional histogram into an accumulator (used when collapsing
/// per-trial metrics into one report row). Ignores empty or layout-mismatched
/// histograms.
pub fn merge_histogram(acc: &mut Option<HistogramUs>, h: Option<&HistogramUs>) {
    let Some(h) = h else { return };
    if h.is_empty() {
        return;
    }
    match acc {
        Some(a) => {
            let _ = a.merge(h);
        }
        None => *acc = Some(h.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_metrics_from_registry() {
        let mut reg = MetricsRegistry::new();
        reg.add("telemetry.events", 500);
        reg.observe_us("attack.lead_us", 36.0);
        reg.observe_us("attack.anchor_error_us", 4.0);
        let m = TrialMetrics::from_registry(&reg, 1.0, 1.0);
        assert_eq!(m.events_total, 500);
        assert!((m.events_per_sec - 250.0).abs() < 1e-9);
        assert_eq!(m.lead_time.as_ref().map(HistogramUs::count), Some(1));
        assert_eq!(m.anchor_error.as_ref().map(HistogramUs::count), Some(1));
        assert!(m.ifs_delta.is_none());
    }

    #[test]
    fn phase_profile_skips_unclosed_kinds_and_merges_by_name() {
        let mut reg = MetricsRegistry::new();
        reg.add("span.trial_sync.count", 1);
        reg.add("span.trial_sync.sim_ns", 1_000);
        reg.add("span.trial_sync.self_sim_ns", 800);
        reg.add("span.trial_sync.wall_ns", 50);
        reg.add("span.trial_sync.self_wall_ns", 40);
        let rows = phase_profile_from_registry(&reg);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].phase, "trial-sync");
        assert_eq!(rows[0].sim_ns, 1_000);

        let mut acc = Vec::new();
        merge_phase_profile(&mut acc, &rows);
        merge_phase_profile(&mut acc, &rows);
        assert_eq!(acc.len(), 1);
        assert_eq!(acc[0].count, 2);
        assert_eq!(acc[0].sim_ns, 2_000);
        assert_eq!(acc[0].self_wall_ns, 80);
    }

    #[test]
    fn merged_phase_rows_sort_in_kind_order() {
        let follow = PhaseProfile {
            phase: "trial-follow",
            count: 1,
            sim_ns: 5,
            self_sim_ns: 5,
            wall_ns: 0,
            self_wall_ns: 0,
        };
        let sync = PhaseProfile {
            phase: "trial-sync",
            count: 1,
            sim_ns: 9,
            self_sim_ns: 9,
            wall_ns: 0,
            self_wall_ns: 0,
        };
        // First trial only saw the follow phase; canonical order must not
        // depend on that accident.
        let mut acc = Vec::new();
        merge_phase_profile(&mut acc, &[follow]);
        merge_phase_profile(&mut acc, &[sync, follow]);
        assert_eq!(
            acc.iter().map(|r| r.phase).collect::<Vec<_>>(),
            vec!["trial-sync", "trial-follow"]
        );
    }

    #[test]
    fn merge_histogram_accumulates() {
        let mut a = HistogramUs::default();
        a.record(10.0);
        let mut b = HistogramUs::default();
        b.record(20.0);
        let mut acc = None;
        merge_histogram(&mut acc, Some(&a));
        merge_histogram(&mut acc, Some(&b));
        merge_histogram(&mut acc, None);
        assert_eq!(acc.map(|h| h.count()), Some(2));
    }
}
