//! The experiment rig: the paper's testbed geometry in simulation.
//!
//! Experiments 1–2: Peripheral (lightbulb), Central and attacker on the
//! vertices of a 2 m equilateral triangle (§VII-A, Figure 8). Experiment 3:
//! bulb and phone 2 m apart, attacker at 1–10 m. The wall experiment adds
//! an 8 dB wall between the attacker and the room.

use std::cell::RefCell;
use std::rc::Rc;

use ble_devices::{Central, Lightbulb};
use ble_link::ConnectionParams;
use ble_phy::{Environment, NodeConfig, NodeId, Position, Simulation, Wall};
use injectable::{Attacker, AttackerConfig};
use simkit::{DriftClock, Duration, SimRng};

/// Default attacker transmit power: an nRF52840 dongle's default 0 dBm.
pub const ATTACKER_TX_DBM: f64 = 0.0;

/// A complete experiment scene.
pub struct ExperimentRig {
    /// The simulation world.
    pub sim: Simulation,
    /// The victim Peripheral (lightbulb).
    pub bulb: Rc<RefCell<Lightbulb>>,
    /// The legitimate Central.
    pub central: Rc<RefCell<Central>>,
    /// The attacker.
    pub attacker: Rc<RefCell<Attacker>>,
    /// Attacker node id (for moving it between runs).
    pub attacker_id: NodeId,
    /// Handle of the bulb's control characteristic.
    pub control_handle: u16,
}

/// Scene geometry and radio parameters for a rig.
#[derive(Debug, Clone)]
pub struct RigConfig {
    /// Connection hop interval (×1.25 ms).
    pub hop_interval: u16,
    /// Attacker distance from the Peripheral, in metres.
    pub attacker_distance: f64,
    /// Central distance from the Peripheral, in metres.
    pub central_distance: f64,
    /// Wall between the attacker and the room, with this attenuation (dB).
    pub wall_db: Option<f64>,
    /// Victim sleep-clock accuracy bound (ppm).
    pub victim_sca_ppm: f64,
    /// Attacker sleep-clock accuracy bound (ppm).
    pub attacker_sca_ppm: f64,
    /// Scale on the victim slave's window widening (§VIII countermeasure 1;
    /// 1.0 = spec behaviour).
    pub widening_scale: f64,
    /// PHY mode for every node (LE 1M in all paper experiments).
    pub phy: ble_phy::PhyMode,
    /// Override of the attacker's anchor-timestamp noise (µs).
    pub attacker_anchor_noise_us: Option<f64>,
}

impl Default for RigConfig {
    fn default() -> Self {
        RigConfig {
            hop_interval: 36,
            attacker_distance: 2.0,
            central_distance: 2.0,
            wall_db: None,
            victim_sca_ppm: 50.0,
            attacker_sca_ppm: 20.0,
            widening_scale: 1.0,
            phy: ble_phy::PhyMode::Le1M,
            attacker_anchor_noise_us: None,
        }
    }
}

impl ExperimentRig {
    /// Builds the scene. The Peripheral sits at the origin, the Central on
    /// the +x axis, the attacker on the −y axis (behind the optional wall
    /// at y = −0.5 m).
    pub fn new(seed: u64, cfg: &RigConfig) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let mut env = Environment::indoor_default();
        if let Some(db) = cfg.wall_db {
            env = env.with_wall(Wall::new(
                Position::new(-100.0, -0.5),
                Position::new(100.0, -0.5),
                db,
            ));
        }
        let mut sim = Simulation::new(env, rng.fork());

        let mut bulb_obj = Lightbulb::new(0xB1, rng.fork());
        bulb_obj.ll.set_widening_scale(cfg.widening_scale);
        let control_handle = bulb_obj.control_handle();
        let bulb_addr = bulb_obj.ll.address();
        let bulb = Rc::new(RefCell::new(bulb_obj));

        let params = ConnectionParams::typical(&mut rng, cfg.hop_interval);
        let central = Rc::new(RefCell::new(Central::new(
            0xA0,
            bulb_addr,
            params,
            rng.fork(),
        )));

        let mut attacker_cfg = AttackerConfig {
            target_slave: Some(bulb_addr),
            ..AttackerConfig::default()
        };
        if let Some(noise) = cfg.attacker_anchor_noise_us {
            attacker_cfg.anchor_noise_us = noise;
        }
        let attacker = Rc::new(RefCell::new(Attacker::new(attacker_cfg)));

        let bulb_id = sim.add_node(
            NodeConfig::new("bulb", Position::new(0.0, 0.0))
                .with_phy(cfg.phy)
                .with_clock(
                    DriftClock::realistic(cfg.victim_sca_ppm, &mut rng).with_jitter_us(1.0),
                ),
            bulb.clone(),
        );
        let central_id = sim.add_node(
            NodeConfig::new("phone", Position::new(cfg.central_distance, 0.0))
                .with_phy(cfg.phy)
                .with_clock(
                    DriftClock::realistic(cfg.victim_sca_ppm, &mut rng).with_jitter_us(1.0),
                ),
            central.clone(),
        );
        let attacker_id = sim.add_node(
            NodeConfig::new("attacker", Position::new(0.0, -cfg.attacker_distance))
                .with_tx_power(ATTACKER_TX_DBM)
                .with_phy(cfg.phy)
                .with_clock(
                    DriftClock::realistic(cfg.attacker_sca_ppm, &mut rng).with_jitter_us(1.0),
                ),
            attacker.clone(),
        );

        {
            let bulb = bulb.clone();
            sim.with_ctx(bulb_id, |ctx| bulb.borrow_mut().start(ctx));
        }
        {
            let central = central.clone();
            sim.with_ctx(central_id, |ctx| central.borrow_mut().start(ctx));
        }
        {
            let attacker = attacker.clone();
            sim.with_ctx(attacker_id, |ctx| attacker.borrow_mut().start(ctx));
        }

        ExperimentRig {
            sim,
            bulb,
            central,
            attacker,
            attacker_id,
            control_handle,
        }
    }

    /// Runs until the connection is up and the attacker follows it with
    /// sequence state. Returns `false` on setup timeout.
    pub fn wait_synchronised(&mut self, budget: Duration) -> bool {
        let deadline = self.sim.now() + budget;
        while self.sim.now() < deadline {
            self.sim.run_for(Duration::from_millis(100));
            let connected = self.central.borrow().ll.is_connected();
            let following = self
                .attacker
                .borrow()
                .connection()
                .map(|c| c.has_slave_seq())
                .unwrap_or(false);
            if connected && following {
                return true;
            }
        }
        false
    }
}
