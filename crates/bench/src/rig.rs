//! The experiment rig: the paper's testbed geometry in simulation.
//!
//! Experiments 1–2: Peripheral (lightbulb), Central and attacker on the
//! vertices of a 2 m equilateral triangle (§VII-A, Figure 8). Experiment 3:
//! bulb and phone 2 m apart, attacker at 1–10 m. The wall experiment adds
//! an 8 dB wall between the attacker and the room.
//!
//! This is a thin preset over [`ScenarioBuilder`]: the geometry knobs of
//! [`RigConfig`] map one-to-one onto builder calls, and the arena-owned
//! [`Scenario`] does the rest.

use ble_devices::{Central, Lightbulb};
use ble_phy::NodeId;
use ble_scenario::{Scenario, ScenarioBuilder, TelemetryMode};
use injectable::{Attacker, ResyncPolicy};
use simkit::{Duration, FaultPlan};

/// Default attacker transmit power: an nRF52840 dongle's default 0 dBm.
pub const ATTACKER_TX_DBM: f64 = 0.0;

/// A complete experiment scene (a [`Scenario`] plus the handles the
/// trial loop touches).
pub struct ExperimentRig {
    /// The built scene; owns the simulation world and every node.
    pub scenario: Scenario,
    /// Handle of the bulb's control characteristic.
    pub control_handle: u16,
}

/// Scene geometry and radio parameters for a rig.
#[derive(Debug, Clone)]
pub struct RigConfig {
    /// Connection hop interval (×1.25 ms).
    pub hop_interval: u16,
    /// Attacker distance from the Peripheral, in metres.
    pub attacker_distance: f64,
    /// Central distance from the Peripheral, in metres.
    pub central_distance: f64,
    /// Wall between the attacker and the room, with this attenuation (dB).
    pub wall_db: Option<f64>,
    /// Victim sleep-clock accuracy bound (ppm).
    pub victim_sca_ppm: f64,
    /// Attacker sleep-clock accuracy bound (ppm).
    pub attacker_sca_ppm: f64,
    /// Scale on the victim slave's window widening (§VIII countermeasure 1;
    /// 1.0 = spec behaviour).
    pub widening_scale: f64,
    /// PHY mode for every node (LE 1M in all paper experiments).
    pub phy: ble_phy::PhyMode,
    /// Override of the attacker's anchor-timestamp noise (µs).
    pub attacker_anchor_noise_us: Option<f64>,
    /// Deterministic channel impairments installed into the medium; `None`
    /// (the default) builds the byte-identical unimpaired world.
    pub faults: Option<FaultPlan>,
    /// Override of the attacker's resynchronisation policy. The default
    /// policy stays dormant in healthy runs; fault sweeps use a tighter one
    /// so hopeless trials give up early.
    pub resync: Option<ResyncPolicy>,
}

impl Default for RigConfig {
    fn default() -> Self {
        RigConfig {
            hop_interval: 36,
            attacker_distance: 2.0,
            central_distance: 2.0,
            wall_db: None,
            victim_sca_ppm: 50.0,
            attacker_sca_ppm: 20.0,
            widening_scale: 1.0,
            phy: ble_phy::PhyMode::Le1M,
            attacker_anchor_noise_us: None,
            faults: None,
            resync: None,
        }
    }
}

impl ExperimentRig {
    /// Builds the scene. The Peripheral sits at the origin, the Central on
    /// the +x axis, the attacker on the −y axis (behind the optional wall
    /// at y = −0.5 m).
    pub fn new(seed: u64, cfg: &RigConfig) -> Self {
        Self::with_telemetry(seed, cfg, TelemetryMode::Off)
    }

    /// Like [`ExperimentRig::new`], with telemetry capture wired through the
    /// scenario builder. Sinks attach before node bootstrap (so spans opened
    /// in `on_start` hooks are captured) and the quarantined harness
    /// wall-clock is installed as the span clock.
    pub fn with_telemetry(seed: u64, cfg: &RigConfig, telemetry: TelemetryMode) -> Self {
        let mut builder = ScenarioBuilder::paper_rig(seed)
            .telemetry(telemetry)
            .span_clock(crate::wallclock::monotonic_ns)
            .hop_interval(cfg.hop_interval)
            .attacker_distance(cfg.attacker_distance)
            .central_distance(cfg.central_distance)
            .victim_sca_ppm(cfg.victim_sca_ppm)
            .attacker_sca_ppm(cfg.attacker_sca_ppm)
            .widening_scale(cfg.widening_scale)
            .attacker_tx_dbm(ATTACKER_TX_DBM)
            .phy(cfg.phy);
        if let Some(db) = cfg.wall_db {
            builder = builder.wall_db(db);
        }
        if let Some(noise) = cfg.attacker_anchor_noise_us {
            builder = builder.attacker_anchor_noise_us(noise);
        }
        if let Some(plan) = &cfg.faults {
            builder = builder.faults(plan.clone());
        }
        if let Some(policy) = &cfg.resync {
            builder = builder.attacker_resync(policy.clone());
        }
        let scenario = builder.build();
        let control_handle = scenario.victim_control_handle();
        ExperimentRig {
            scenario,
            control_handle,
        }
    }

    /// The victim lightbulb.
    pub fn bulb(&self) -> &Lightbulb {
        self.scenario.victim::<Lightbulb>()
    }

    /// Mutable access to the victim lightbulb.
    pub fn bulb_mut(&mut self) -> &mut Lightbulb {
        self.scenario.victim_mut::<Lightbulb>()
    }

    /// The legitimate Central.
    pub fn central(&self) -> &Central {
        self.scenario.central()
    }

    /// Mutable access to the legitimate Central.
    pub fn central_mut(&mut self) -> &mut Central {
        self.scenario.central_mut()
    }

    /// The attacker.
    pub fn attacker(&self) -> &Attacker {
        self.scenario.attacker()
    }

    /// Mutable access to the attacker.
    pub fn attacker_mut(&mut self) -> &mut Attacker {
        self.scenario.attacker_mut()
    }

    /// Attacker node id (for moving it between runs).
    pub fn attacker_id(&self) -> NodeId {
        self.scenario
            .attacker_id
            .expect("paper rig always has an attacker")
    }

    /// Runs until the connection is up and the attacker follows it with
    /// sequence state. Returns `false` on setup timeout.
    pub fn wait_synchronised(&mut self, budget: Duration) -> bool {
        self.scenario.wait_synchronised(budget)
    }
}
