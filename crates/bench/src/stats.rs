//! Summary statistics for experiment series.

use serde::Serialize;

/// Five-number-plus-mean summary of a sample, the shape Figure 9's
/// box-plot-like panels report.
#[derive(Debug, Clone, Serialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample variance.
    pub variance: f64,
}

impl Summary {
    /// An all-zero summary standing in for an empty sample (e.g. a series
    /// row where no trial succeeded).
    pub fn empty() -> Summary {
        Summary {
            n: 0,
            min: 0.0,
            q1: 0.0,
            median: 0.0,
            q3: 0.0,
            max: 0.0,
            mean: 0.0,
            variance: 0.0,
        }
    }

    /// Computes the summary of a sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn of(values: &[u32]) -> Summary {
        assert!(!values.is_empty(), "summary of empty sample");
        let mut sorted: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let variance = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        Summary {
            n,
            min: sorted[0],
            q1: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.5),
            q3: quantile(&sorted, 0.75),
            max: sorted[n - 1],
            mean,
            variance,
        }
    }
}

/// Linear-interpolated quantile of a sorted sample.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1, 2, 3, 4, 5]);
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.variance, 2.0);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[7]);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.q1, 7.0);
        assert_eq!(s.variance, 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = Summary::of(&[1, 2, 3, 4]);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.q1, 1.75);
        assert_eq!(s.q3, 3.25);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        let _ = Summary::of(&[]);
    }
}
