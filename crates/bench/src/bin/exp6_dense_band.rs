//! Experiment 6: injection success vs dense-band background load.
//!
//! The paper's testbed is a quiet lab: the victim connection is the only
//! traffic in the 2.4 GHz band. This sweep drops the same rig into a dense
//! hall (path-loss exponent 3.4) shared with 8–512 background connection
//! pairs hopping the 37 data channels, and measures what channel occupancy
//! does to the attack: injection attempts to first success, the band's
//! co-channel collision rate, and how many `RxStart` events the sharded
//! medium schedules per frame (the quantity the channel-sharding rework
//! keeps independent of world size).

use bench::trial::{canonical_write_payload, trial_seed, TrialOutcome};
use bench::{print_series_to, Cli, SeriesReport};
use ble_devices::Lightbulb;
use ble_link::Llid;
use ble_phy::Environment;
use ble_scenario::{ScenarioBuilder, TelemetryMode};
use injectable::Mission;
use simkit::Duration;

/// Sim-deterministic band statistics captured alongside one trial.
struct BandStats {
    /// Frames put on the air (every transmitter, attacker included).
    tx_frames: u64,
    /// `RxStart` events the medium scheduled.
    scheduled_rx_starts: u64,
    /// Receptions corrupted by an overlapping transmission.
    collisions: u64,
}

/// One dense-band trial: paper rig plus `pairs` background pairs in the
/// dense hall; inject until the first confirmed success or the budget runs
/// out.
fn run_dense_trial(seed: u64, pairs: usize) -> (TrialOutcome, BandStats) {
    let mut sc = ScenarioBuilder::paper_rig(seed)
        .environment(Environment::dense_hall())
        .background_pairs(pairs)
        .delivery_tracker(128)
        .telemetry(TelemetryMode::Metrics)
        .build();
    let outcome = |sc: &mut ble_scenario::Scenario, attempts, effect_observed| {
        sc.world.flush_telemetry();
        let totals = sc.delivery_totals().expect("tracker was enabled");
        let collisions = sc
            .metrics()
            .map(|reg| reg.lock().counter("phy.collision"))
            .unwrap_or(0);
        (
            TrialOutcome {
                attempts,
                sim_seconds: sc.now().as_micros_f64() / 1e6,
                effect_observed,
                metrics: None,
                telemetry_downgraded: false,
            },
            BandStats {
                tx_frames: totals.tx_frames,
                scheduled_rx_starts: totals.scheduled_rx_starts,
                collisions,
            },
        )
    };
    if !sc.wait_synchronised(Duration::from_secs(30)) {
        return outcome(&mut sc, None, false);
    }
    sc.attacker_mut().arm(Mission::InjectRaw {
        llid: Llid::StartOrComplete,
        payload: canonical_write_payload(),
        wanted_successes: 1,
    });
    let deadline = sc.now() + Duration::from_secs(20);
    let mut attempts = None;
    let mut stalled_ticks = 0u32;
    while sc.now() < deadline {
        sc.run_for(Duration::from_millis(200));
        if sc.attacker().stats().successes() >= 1 {
            attempts = sc.attacker().stats().attempts_to_first_success();
            break;
        }
        if sc.attacker().resync_exhausted() {
            break;
        }
        // Dense-band collisions can cycle the victim connection while the
        // attacker injects blind; the bulb re-advertises and the Central
        // reconnects on its own, so a stalled attacker only needs its scan
        // campaign restarted.
        if sc.attacker().connection().is_some() {
            stalled_ticks = 0;
        } else {
            stalled_ticks += 1;
            if stalled_ticks >= 10 {
                stalled_ticks = 0;
                let attacker_id = sc.attacker_id.expect("paper rig has an attacker");
                sc.world
                    .with_node_ctx::<injectable::Attacker, _>(attacker_id, |a, ctx| {
                        a.restart_resync(ctx)
                    });
            }
        }
    }
    let effect_observed = sc.victim::<Lightbulb>().app.pings > 0;
    outcome(&mut sc, attempts, effect_observed)
}

fn main() {
    let cli = Cli::parse(10);
    let base = cli.seed_base(6_000);
    let mut rows = Vec::new();
    for pairs in [8usize, 32, 128, 512] {
        let row_start = bench::wallclock::Stopwatch::start();
        // Serial trials: the 512-pair worlds are large, and channel
        // occupancy is what the row measures — seed order is the artefact
        // order either way.
        let mut outcomes = Vec::new();
        let mut tx_frames = 0u64;
        let mut scheduled = 0u64;
        let mut collisions = 0u64;
        for i in 0..cli.trials {
            let (o, band) = run_dense_trial(trial_seed(base + pairs as u64, i), pairs);
            outcomes.push(o);
            tx_frames += band.tx_frames;
            scheduled += band.scheduled_rx_starts;
            collisions += band.collisions;
        }
        let frames = tx_frames.max(1) as f64;
        rows.push(
            SeriesReport::from_outcomes("background_pairs", pairs as f64, &outcomes)
                .with_extra("co_channel_collision_rate", collisions as f64 / frames)
                .with_extra("mean_scheduled_rx_starts", scheduled as f64 / frames)
                .with_throughput(row_start.elapsed_s()),
        );
        eprintln!("background_pairs {pairs}: done");
    }
    print_series_to(
        "exp6_dense_band",
        "Experiment 6 — Dense-band background load (channel-sharded medium)",
        &rows,
        cli.json.as_deref(),
    );
}
