//! Replays a JSONL telemetry trace as a per-channel timeline (paper
//! Figure 5 style): when each node keyed, transmitted and received on each
//! data channel, with the attacker's injection attempts and verdicts
//! called out.
//!
//! Usage:
//!   timeline <trace.jsonl> [--limit N]   render an existing trace
//!   timeline --demo [--limit N]          run one close-range trial with a
//!                                        JSONL sink, then render it
//!   timeline … --spans                   additionally render the span lane
//!                                        (phase spans + per-phase totals)
//!
//! Exits non-zero when the trace is unreadable or contains no valid event
//! lines, which is what the CI smoke step asserts.

use std::collections::BTreeMap;
use std::io::BufRead;
use std::process::ExitCode;

use bench::report::artefact_dir;
use bench::telemetry::TelemetryMode;
use bench::trial::{run_trial, TrialConfig};
use ble_telemetry::{parse_line, SpanKind, TelemetryEvent, TelemetryRecord};

/// Default cap on rendered event rows (traces run to millions of events).
const DEFAULT_LIMIT: usize = 200;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut limit = DEFAULT_LIMIT;
    let mut demo = false;
    let mut spans = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--demo" => demo = true,
            "--spans" => spans = true,
            "--limit" => {
                i += 1;
                limit = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(DEFAULT_LIMIT);
            }
            other => path = Some(other.to_string()),
        }
        i += 1;
    }

    let path = if demo {
        let out = artefact_dir().join("timeline-demo.jsonl");
        println!("[demo] running one close-range trial with a JSONL sink…");
        let mut cfg = TrialConfig::new(42);
        cfg.telemetry = TelemetryMode::Jsonl(out.clone());
        let outcome = run_trial(&cfg);
        println!(
            "[demo] trial done: attempts={:?} sim_seconds={:.1}",
            outcome.attempts, outcome.sim_seconds
        );
        out.display().to_string()
    } else {
        match path {
            Some(p) => p,
            None => {
                eprintln!("usage: timeline <trace.jsonl> [--limit N] | timeline --demo");
                return ExitCode::FAILURE;
            }
        }
    };

    let file = match std::fs::File::open(&path) {
        Ok(f) => f,
        Err(err) => {
            eprintln!("timeline: cannot open {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in std::io::BufReader::new(file).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(&line) {
            Some(r) => records.push(r),
            None => skipped += 1,
        }
    }
    if records.is_empty() {
        eprintln!("timeline: no valid event lines in {path} ({skipped} unparseable)");
        return ExitCode::FAILURE;
    }
    render(&records, limit, skipped);
    if spans {
        print!("{}", render_spans(&records, limit));
    }
    ExitCode::SUCCESS
}

/// Node labels from the `NodeAdded` replay at the head of every trace.
fn node_labels(records: &[TelemetryRecord]) -> BTreeMap<u32, String> {
    let mut labels = BTreeMap::new();
    for r in records {
        if let (Some(node), TelemetryEvent::NodeAdded { label }) = (r.node, &r.event) {
            labels.entry(node).or_insert_with(|| label.clone());
        }
    }
    labels
}

/// The channel lane an event renders on, if it is channel-scoped.
fn event_channel(event: &TelemetryEvent) -> Option<u8> {
    match event {
        TelemetryEvent::TxStart { channel, .. }
        | TelemetryEvent::RxLock { channel }
        | TelemetryEvent::Relock { channel }
        | TelemetryEvent::RxEnd { channel, .. }
        | TelemetryEvent::Collision { channel, .. }
        | TelemetryEvent::InterferenceSpill { channel }
        | TelemetryEvent::Anchor { channel, .. }
        | TelemetryEvent::WindowOpen { channel, .. }
        | TelemetryEvent::Hop { channel, .. }
        | TelemetryEvent::CrcFail { channel }
        | TelemetryEvent::InjectionAttempt { channel, .. }
        | TelemetryEvent::FaultBurst { channel, .. }
        | TelemetryEvent::FaultFrame { channel, .. } => Some(*channel),
        TelemetryEvent::NodeAdded { .. }
        | TelemetryEvent::TxEnd
        | TelemetryEvent::SnNesn { .. }
        | TelemetryEvent::LlControl { .. }
        | TelemetryEvent::ConnectionEstablished { .. }
        | TelemetryEvent::ConnectionClosed { .. }
        | TelemetryEvent::SnifferSync { .. }
        | TelemetryEvent::SnifferLost { .. }
        | TelemetryEvent::HeuristicVerdict { .. }
        | TelemetryEvent::AnchorPrediction { .. }
        | TelemetryEvent::IfsDelta { .. }
        | TelemetryEvent::Takeover { .. }
        | TelemetryEvent::DetectorAlert { .. }
        | TelemetryEvent::FaultEpisode { .. }
        | TelemetryEvent::SpanEnter { .. }
        | TelemetryEvent::SpanExit { .. }
        | TelemetryEvent::PoolExhausted { .. }
        | TelemetryEvent::SlotDenied
        | TelemetryEvent::ConnEstablished { .. }
        | TelemetryEvent::ConnReleased { .. }
        | TelemetryEvent::PoolHighWater { .. }
        | TelemetryEvent::Raw { .. } => None,
    }
}

/// Whether an event is worth a row in the condensed listing (radio-level
/// noise like every rx-lock is summarised, not listed).
fn is_headline(event: &TelemetryEvent) -> bool {
    match event {
        TelemetryEvent::Anchor { .. }
        | TelemetryEvent::InjectionAttempt { .. }
        | TelemetryEvent::HeuristicVerdict { .. }
        | TelemetryEvent::ConnectionEstablished { .. }
        | TelemetryEvent::ConnectionClosed { .. }
        | TelemetryEvent::SnifferSync { .. }
        | TelemetryEvent::SnifferLost { .. }
        | TelemetryEvent::Takeover { .. }
        | TelemetryEvent::DetectorAlert { .. }
        | TelemetryEvent::Collision { .. }
        | TelemetryEvent::CrcFail { .. }
        | TelemetryEvent::LlControl { .. }
        | TelemetryEvent::FaultBurst { .. }
        | TelemetryEvent::FaultEpisode { .. } => true,
        TelemetryEvent::NodeAdded { .. }
        | TelemetryEvent::TxStart { .. }
        | TelemetryEvent::TxEnd
        | TelemetryEvent::RxLock { .. }
        | TelemetryEvent::Relock { .. }
        | TelemetryEvent::RxEnd { .. }
        | TelemetryEvent::InterferenceSpill { .. }
        | TelemetryEvent::WindowOpen { .. }
        | TelemetryEvent::Hop { .. }
        | TelemetryEvent::SnNesn { .. }
        | TelemetryEvent::AnchorPrediction { .. }
        | TelemetryEvent::IfsDelta { .. }
        | TelemetryEvent::FaultFrame { .. }
        | TelemetryEvent::SpanEnter { .. }
        | TelemetryEvent::SpanExit { .. }
        | TelemetryEvent::PoolExhausted { .. }
        | TelemetryEvent::SlotDenied
        | TelemetryEvent::ConnEstablished { .. }
        | TelemetryEvent::ConnReleased { .. }
        | TelemetryEvent::PoolHighWater { .. }
        | TelemetryEvent::Raw { .. } => false,
    }
}

/// How a span's `detail` payload reads for humans (channel for airtime and
/// injection spans, LL opcode for control procedures).
fn span_detail(kind: SpanKind, detail: u32) -> String {
    match kind {
        SpanKind::ChannelAirtime | SpanKind::AttackerInject => format!("ch {detail}"),
        SpanKind::LlProcedure => format!("op 0x{detail:02X}"),
        SpanKind::TrialSync
        | SpanKind::TrialFollow
        | SpanKind::TrialVerify
        | SpanKind::AttackerScan
        | SpanKind::AttackerFollow => "-".to_string(),
    }
}

/// Renders the span lane: a chronological listing of closed spans followed
/// by per-phase sim-time totals. Pure function of the records (wall-clock
/// span fields are deliberately **not** rendered), so its output is
/// byte-stable across equally-seeded runs and golden-testable.
fn render_spans(records: &[TelemetryRecord], limit: usize) -> String {
    use std::fmt::Write as _;
    let labels = node_labels(records);
    let mut out = String::new();
    let _ = writeln!(out);
    let _ = writeln!(out, "=== span lane ===");
    let _ = writeln!(
        out,
        "{:>12}  {:<10} {:<16} {:>8} {:>12} {:>12}",
        "t (ms)", "node", "span", "detail", "sim_ms", "self_ms"
    );
    let _ = writeln!(out, "{}", "-".repeat(78));
    let mut shown = 0usize;
    let mut elided = 0usize;
    let mut totals: BTreeMap<usize, (u64, u64, u64)> = BTreeMap::new();
    for r in records {
        let TelemetryEvent::SpanExit {
            kind,
            detail,
            sim_ns,
            self_sim_ns,
            ..
        } = &r.event
        else {
            continue;
        };
        let t = totals.entry(kind.index()).or_insert((0, 0, 0));
        t.0 += 1;
        t.1 += sim_ns;
        t.2 += self_sim_ns;
        if shown >= limit {
            elided += 1;
            continue;
        }
        shown += 1;
        let node = r
            .node
            .and_then(|n| labels.get(&n).cloned())
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "{:>12.3}  {:<10} {:<16} {:>8} {:>12.3} {:>12.3}",
            r.at.as_micros_f64() / 1_000.0,
            node,
            kind.as_str(),
            span_detail(*kind, *detail),
            *sim_ns as f64 / 1e6,
            *self_sim_ns as f64 / 1e6,
        );
    }
    if shown == 0 {
        let _ = writeln!(out, "(no closed spans in this trace)");
    }
    if elided > 0 {
        let _ = writeln!(out, "… {elided} more spans (raise with --limit)");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "per-phase totals (sim time):");
    for (idx, (count, sim_ns, self_sim_ns)) in &totals {
        let kind = SpanKind::ALL[*idx];
        let _ = writeln!(
            out,
            "  {:<16} count={:<6} sim_ms={:<12.3} self_ms={:.3}",
            kind.as_str(),
            count,
            *sim_ns as f64 / 1e6,
            *self_sim_ns as f64 / 1e6,
        );
    }
    let _ = writeln!(out);
    out
}

fn render(records: &[TelemetryRecord], limit: usize, skipped: usize) {
    let labels = node_labels(records);
    println!();
    println!("=== telemetry timeline ===");
    println!(
        "{} events ({} unparseable lines skipped), {} nodes",
        records.len(),
        skipped,
        labels.len()
    );
    for (id, label) in &labels {
        println!("  node {id}: {label}");
    }

    // Condensed chronological listing of headline events.
    println!();
    println!(
        "{:>12}  {:>3}  {:<10} {:<15} event",
        "t (ms)", "ch", "node", "kind"
    );
    println!("{}", "-".repeat(88));
    let mut shown = 0usize;
    let mut elided = 0usize;
    for r in records {
        if !is_headline(&r.event) {
            continue;
        }
        if shown >= limit {
            elided += 1;
            continue;
        }
        shown += 1;
        let node = r
            .node
            .and_then(|n| labels.get(&n).cloned())
            .unwrap_or_else(|| "-".to_string());
        let ch = match event_channel(&r.event) {
            Some(c) => format!("{c}"),
            None => "-".to_string(),
        };
        println!(
            "{:>12.3}  {:>3}  {:<10} {:<15} {}",
            r.at.as_micros_f64() / 1_000.0,
            ch,
            node,
            r.event.tag(),
            r.event
        );
    }
    if elided > 0 {
        println!("… {elided} more headline events (raise with --limit)");
    }

    // Per-channel activity lanes: how the connection hopped and where the
    // attacker struck (the Figure 5 view, aggregated).
    let mut lanes: BTreeMap<u8, (u64, u64, u64)> = BTreeMap::new();
    for r in records {
        let Some(ch) = event_channel(&r.event) else {
            continue;
        };
        let lane = lanes.entry(ch).or_insert((0, 0, 0));
        match &r.event {
            TelemetryEvent::Anchor { .. } => lane.0 += 1,
            TelemetryEvent::InjectionAttempt { .. } => lane.1 += 1,
            TelemetryEvent::Collision { .. }
            | TelemetryEvent::CrcFail { .. }
            | TelemetryEvent::FaultFrame { .. } => lane.2 += 1,
            TelemetryEvent::NodeAdded { .. }
            | TelemetryEvent::TxStart { .. }
            | TelemetryEvent::TxEnd
            | TelemetryEvent::RxLock { .. }
            | TelemetryEvent::Relock { .. }
            | TelemetryEvent::RxEnd { .. }
            | TelemetryEvent::InterferenceSpill { .. }
            | TelemetryEvent::WindowOpen { .. }
            | TelemetryEvent::Hop { .. }
            | TelemetryEvent::SnNesn { .. }
            | TelemetryEvent::LlControl { .. }
            | TelemetryEvent::ConnectionEstablished { .. }
            | TelemetryEvent::ConnectionClosed { .. }
            | TelemetryEvent::SnifferSync { .. }
            | TelemetryEvent::SnifferLost { .. }
            | TelemetryEvent::HeuristicVerdict { .. }
            | TelemetryEvent::AnchorPrediction { .. }
            | TelemetryEvent::IfsDelta { .. }
            | TelemetryEvent::Takeover { .. }
            | TelemetryEvent::DetectorAlert { .. }
            | TelemetryEvent::FaultBurst { .. }
            | TelemetryEvent::FaultEpisode { .. }
            | TelemetryEvent::SpanEnter { .. }
            | TelemetryEvent::SpanExit { .. }
            | TelemetryEvent::PoolExhausted { .. }
            | TelemetryEvent::SlotDenied
            | TelemetryEvent::ConnEstablished { .. }
            | TelemetryEvent::ConnReleased { .. }
            | TelemetryEvent::PoolHighWater { .. }
            | TelemetryEvent::Raw { .. } => {}
        }
    }
    println!();
    println!("per-channel activity (a = anchors, i = injection attempts, x = collisions/CRC):");
    let max = lanes
        .values()
        .map(|(a, i, x)| a + i + x)
        .max()
        .unwrap_or(1)
        .max(1);
    for (ch, (anchors, injects, bad)) in &lanes {
        if anchors + injects + bad == 0 {
            continue;
        }
        let bar_units = |n: u64| ((n * 40).div_ceil(max)).min(40) as usize;
        println!(
            "  ch {ch:>2} | {}{}{} ({anchors} a, {injects} i, {bad} x)",
            "a".repeat(bar_units(*anchors)),
            "i".repeat(bar_units(*injects)),
            "x".repeat(bar_units(*bad)),
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Instant;

    fn rec(at_us: u64, node: Option<u32>, event: TelemetryEvent) -> TelemetryRecord {
        TelemetryRecord {
            at: Instant::from_micros(at_us),
            node,
            event,
        }
    }

    /// A small synthetic trace exercising every span-lane feature: node
    /// labels, nesting (self < total), every detail format, and the elision
    /// counter.
    fn span_trace() -> Vec<TelemetryRecord> {
        vec![
            rec(
                0,
                Some(0),
                TelemetryEvent::NodeAdded {
                    label: "phone".into(),
                },
            ),
            rec(
                0,
                Some(3),
                TelemetryEvent::NodeAdded {
                    label: "attacker".into(),
                },
            ),
            rec(
                0,
                None,
                TelemetryEvent::SpanEnter {
                    id: 1,
                    kind: SpanKind::TrialSync,
                    detail: 0,
                },
            ),
            rec(
                1_250,
                Some(0),
                TelemetryEvent::SpanExit {
                    id: 2,
                    kind: SpanKind::ChannelAirtime,
                    detail: 17,
                    sim_ns: 368_000,
                    wall_ns: 999,
                    self_sim_ns: 368_000,
                    self_wall_ns: 999,
                },
            ),
            rec(
                2_000,
                Some(0),
                TelemetryEvent::SpanExit {
                    id: 3,
                    kind: SpanKind::LlProcedure,
                    detail: 0x0C,
                    sim_ns: 0,
                    wall_ns: 50,
                    self_sim_ns: 0,
                    self_wall_ns: 50,
                },
            ),
            rec(
                3_000_000,
                Some(3),
                TelemetryEvent::SpanExit {
                    id: 4,
                    kind: SpanKind::AttackerInject,
                    detail: 21,
                    sim_ns: 1_200_000,
                    wall_ns: 400,
                    self_sim_ns: 1_200_000,
                    self_wall_ns: 400,
                },
            ),
            rec(
                5_000_000,
                None,
                TelemetryEvent::SpanExit {
                    id: 1,
                    kind: SpanKind::TrialSync,
                    detail: 0,
                    sim_ns: 5_000_000_000,
                    wall_ns: 123_456,
                    self_sim_ns: 4_998_432_000,
                    self_wall_ns: 122_007,
                },
            ),
        ]
    }

    #[test]
    fn span_lane_matches_golden_file() {
        let rendered = render_spans(&span_trace(), 3);
        let golden_path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/timeline_spans.txt"
        );
        let golden = std::fs::read_to_string(golden_path)
            .unwrap_or_else(|e| panic!("golden file {golden_path} unreadable: {e}"));
        assert_eq!(
            rendered, golden,
            "span lane drifted from {golden_path}; if the change is \
             intentional, update the golden file to the left-hand value"
        );
    }

    #[test]
    fn span_lane_elides_past_the_limit_but_totals_count_everything() {
        let out = render_spans(&span_trace(), 2);
        assert!(out.contains("… 2 more spans"));
        // Totals still aggregate the elided rows.
        assert!(out.contains("trial-sync"));
        assert!(out.contains("attacker-inject"));
    }

    #[test]
    fn span_lane_without_spans_says_so() {
        let out = render_spans(
            &[rec(
                0,
                Some(0),
                TelemetryEvent::NodeAdded { label: "x".into() },
            )],
            10,
        );
        assert!(out.contains("(no closed spans in this trace)"));
    }

    #[test]
    fn span_lane_never_renders_wall_clock() {
        // The wall fields differ between these traces; the rendering must not.
        let mut a = span_trace();
        let mut b = span_trace();
        for r in b.iter_mut() {
            if let TelemetryEvent::SpanExit {
                wall_ns,
                self_wall_ns,
                ..
            } = &mut r.event
            {
                *wall_ns *= 7;
                *self_wall_ns *= 7;
            }
        }
        assert_eq!(render_spans(&a, 10), render_spans(&b, 10));
        // Sim fields, by contrast, do show through.
        if let TelemetryEvent::SpanExit { sim_ns, .. } = &mut a[3].event {
            *sim_ns += 1_000_000;
        }
        assert_ne!(render_spans(&a, 10), render_spans(&b, 10));
    }
}
