//! Replays a JSONL telemetry trace as a per-channel timeline (paper
//! Figure 5 style): when each node keyed, transmitted and received on each
//! data channel, with the attacker's injection attempts and verdicts
//! called out.
//!
//! Usage:
//!   timeline <trace.jsonl> [--limit N]   render an existing trace
//!   timeline --demo [--limit N]          run one close-range trial with a
//!                                        JSONL sink, then render it
//!
//! Exits non-zero when the trace is unreadable or contains no valid event
//! lines, which is what the CI smoke step asserts.

use std::collections::BTreeMap;
use std::io::BufRead;
use std::process::ExitCode;

use bench::report::artefact_dir;
use bench::telemetry::TelemetryMode;
use bench::trial::{run_trial, TrialConfig};
use ble_telemetry::{parse_line, TelemetryEvent, TelemetryRecord};

/// Default cap on rendered event rows (traces run to millions of events).
const DEFAULT_LIMIT: usize = 200;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut limit = DEFAULT_LIMIT;
    let mut demo = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--demo" => demo = true,
            "--limit" => {
                i += 1;
                limit = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(DEFAULT_LIMIT);
            }
            other => path = Some(other.to_string()),
        }
        i += 1;
    }

    let path = if demo {
        let out = artefact_dir().join("timeline-demo.jsonl");
        println!("[demo] running one close-range trial with a JSONL sink…");
        let mut cfg = TrialConfig::new(42);
        cfg.telemetry = TelemetryMode::Jsonl(out.clone());
        let outcome = run_trial(&cfg);
        println!(
            "[demo] trial done: attempts={:?} sim_seconds={:.1}",
            outcome.attempts, outcome.sim_seconds
        );
        out.display().to_string()
    } else {
        match path {
            Some(p) => p,
            None => {
                eprintln!("usage: timeline <trace.jsonl> [--limit N] | timeline --demo");
                return ExitCode::FAILURE;
            }
        }
    };

    let file = match std::fs::File::open(&path) {
        Ok(f) => f,
        Err(err) => {
            eprintln!("timeline: cannot open {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in std::io::BufReader::new(file).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(&line) {
            Some(r) => records.push(r),
            None => skipped += 1,
        }
    }
    if records.is_empty() {
        eprintln!("timeline: no valid event lines in {path} ({skipped} unparseable)");
        return ExitCode::FAILURE;
    }
    render(&records, limit, skipped);
    ExitCode::SUCCESS
}

/// Node labels from the `NodeAdded` replay at the head of every trace.
fn node_labels(records: &[TelemetryRecord]) -> BTreeMap<u32, String> {
    let mut labels = BTreeMap::new();
    for r in records {
        if let (Some(node), TelemetryEvent::NodeAdded { label }) = (r.node, &r.event) {
            labels.entry(node).or_insert_with(|| label.clone());
        }
    }
    labels
}

/// The channel lane an event renders on, if it is channel-scoped.
fn event_channel(event: &TelemetryEvent) -> Option<u8> {
    match event {
        TelemetryEvent::TxStart { channel, .. }
        | TelemetryEvent::RxLock { channel }
        | TelemetryEvent::Relock { channel }
        | TelemetryEvent::RxEnd { channel, .. }
        | TelemetryEvent::Collision { channel, .. }
        | TelemetryEvent::Anchor { channel, .. }
        | TelemetryEvent::WindowOpen { channel, .. }
        | TelemetryEvent::Hop { channel, .. }
        | TelemetryEvent::CrcFail { channel }
        | TelemetryEvent::InjectionAttempt { channel, .. }
        | TelemetryEvent::FaultBurst { channel, .. }
        | TelemetryEvent::FaultFrame { channel, .. } => Some(*channel),
        TelemetryEvent::NodeAdded { .. }
        | TelemetryEvent::TxEnd
        | TelemetryEvent::SnNesn { .. }
        | TelemetryEvent::LlControl { .. }
        | TelemetryEvent::ConnectionEstablished { .. }
        | TelemetryEvent::ConnectionClosed { .. }
        | TelemetryEvent::SnifferSync { .. }
        | TelemetryEvent::SnifferLost { .. }
        | TelemetryEvent::HeuristicVerdict { .. }
        | TelemetryEvent::AnchorPrediction { .. }
        | TelemetryEvent::IfsDelta { .. }
        | TelemetryEvent::Takeover { .. }
        | TelemetryEvent::DetectorAlert { .. }
        | TelemetryEvent::FaultEpisode { .. }
        | TelemetryEvent::Raw { .. } => None,
    }
}

/// Whether an event is worth a row in the condensed listing (radio-level
/// noise like every rx-lock is summarised, not listed).
fn is_headline(event: &TelemetryEvent) -> bool {
    match event {
        TelemetryEvent::Anchor { .. }
        | TelemetryEvent::InjectionAttempt { .. }
        | TelemetryEvent::HeuristicVerdict { .. }
        | TelemetryEvent::ConnectionEstablished { .. }
        | TelemetryEvent::ConnectionClosed { .. }
        | TelemetryEvent::SnifferSync { .. }
        | TelemetryEvent::SnifferLost { .. }
        | TelemetryEvent::Takeover { .. }
        | TelemetryEvent::DetectorAlert { .. }
        | TelemetryEvent::Collision { .. }
        | TelemetryEvent::CrcFail { .. }
        | TelemetryEvent::LlControl { .. }
        | TelemetryEvent::FaultBurst { .. }
        | TelemetryEvent::FaultEpisode { .. } => true,
        TelemetryEvent::NodeAdded { .. }
        | TelemetryEvent::TxStart { .. }
        | TelemetryEvent::TxEnd
        | TelemetryEvent::RxLock { .. }
        | TelemetryEvent::Relock { .. }
        | TelemetryEvent::RxEnd { .. }
        | TelemetryEvent::WindowOpen { .. }
        | TelemetryEvent::Hop { .. }
        | TelemetryEvent::SnNesn { .. }
        | TelemetryEvent::AnchorPrediction { .. }
        | TelemetryEvent::IfsDelta { .. }
        | TelemetryEvent::FaultFrame { .. }
        | TelemetryEvent::Raw { .. } => false,
    }
}

fn render(records: &[TelemetryRecord], limit: usize, skipped: usize) {
    let labels = node_labels(records);
    println!();
    println!("=== telemetry timeline ===");
    println!(
        "{} events ({} unparseable lines skipped), {} nodes",
        records.len(),
        skipped,
        labels.len()
    );
    for (id, label) in &labels {
        println!("  node {id}: {label}");
    }

    // Condensed chronological listing of headline events.
    println!();
    println!(
        "{:>12}  {:>3}  {:<10} {:<15} event",
        "t (ms)", "ch", "node", "kind"
    );
    println!("{}", "-".repeat(88));
    let mut shown = 0usize;
    let mut elided = 0usize;
    for r in records {
        if !is_headline(&r.event) {
            continue;
        }
        if shown >= limit {
            elided += 1;
            continue;
        }
        shown += 1;
        let node = r
            .node
            .and_then(|n| labels.get(&n).cloned())
            .unwrap_or_else(|| "-".to_string());
        let ch = match event_channel(&r.event) {
            Some(c) => format!("{c}"),
            None => "-".to_string(),
        };
        println!(
            "{:>12.3}  {:>3}  {:<10} {:<15} {}",
            r.at.as_micros_f64() / 1_000.0,
            ch,
            node,
            r.event.tag(),
            r.event
        );
    }
    if elided > 0 {
        println!("… {elided} more headline events (raise with --limit)");
    }

    // Per-channel activity lanes: how the connection hopped and where the
    // attacker struck (the Figure 5 view, aggregated).
    let mut lanes: BTreeMap<u8, (u64, u64, u64)> = BTreeMap::new();
    for r in records {
        let Some(ch) = event_channel(&r.event) else {
            continue;
        };
        let lane = lanes.entry(ch).or_insert((0, 0, 0));
        match &r.event {
            TelemetryEvent::Anchor { .. } => lane.0 += 1,
            TelemetryEvent::InjectionAttempt { .. } => lane.1 += 1,
            TelemetryEvent::Collision { .. }
            | TelemetryEvent::CrcFail { .. }
            | TelemetryEvent::FaultFrame { .. } => lane.2 += 1,
            TelemetryEvent::NodeAdded { .. }
            | TelemetryEvent::TxStart { .. }
            | TelemetryEvent::TxEnd
            | TelemetryEvent::RxLock { .. }
            | TelemetryEvent::Relock { .. }
            | TelemetryEvent::RxEnd { .. }
            | TelemetryEvent::WindowOpen { .. }
            | TelemetryEvent::Hop { .. }
            | TelemetryEvent::SnNesn { .. }
            | TelemetryEvent::LlControl { .. }
            | TelemetryEvent::ConnectionEstablished { .. }
            | TelemetryEvent::ConnectionClosed { .. }
            | TelemetryEvent::SnifferSync { .. }
            | TelemetryEvent::SnifferLost { .. }
            | TelemetryEvent::HeuristicVerdict { .. }
            | TelemetryEvent::AnchorPrediction { .. }
            | TelemetryEvent::IfsDelta { .. }
            | TelemetryEvent::Takeover { .. }
            | TelemetryEvent::DetectorAlert { .. }
            | TelemetryEvent::FaultBurst { .. }
            | TelemetryEvent::FaultEpisode { .. }
            | TelemetryEvent::Raw { .. } => {}
        }
    }
    println!();
    println!("per-channel activity (a = anchors, i = injection attempts, x = collisions/CRC):");
    let max = lanes
        .values()
        .map(|(a, i, x)| a + i + x)
        .max()
        .unwrap_or(1)
        .max(1);
    for (ch, (anchors, injects, bad)) in &lanes {
        if anchors + injects + bad == 0 {
            continue;
        }
        let bar_units = |n: u64| ((n * 40).div_ceil(max)).min(40) as usize;
        println!(
            "  ch {ch:>2} | {}{}{} ({anchors} a, {injects} i, {bad} x)",
            "a".repeat(bar_units(*anchors)),
            "i".repeat(bar_units(*injects)),
            "x".repeat(bar_units(*bad)),
        );
    }
    println!();
}
