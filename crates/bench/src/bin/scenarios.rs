//! Reproduces the paper's §VI scenario table: all four attack scenarios
//! against the three victim devices, reporting success and attempt counts.
//!
//! Paper claims being checked:
//!   A — "injection attacks targeting three commercial devices" triggering
//!       lightbulb power/colour/brightness, keyfob ring, smartwatch SMS;
//!   B — Slave hijacking serving a forged "Hacked" device name, on all
//!       three devices;
//!   C — Master hijacking driving the same features as scenario A;
//!   D — MITM rewriting an SMS and RGB values on the fly.

use std::cell::RefCell;
use std::rc::Rc;

use ble_devices::{
    bulb_payloads, Central, Keyfob, Lightbulb, Peripheral, PeripheralApp, Smartwatch,
};
use ble_host::att::AttPdu;
use ble_host::gatt::props;
use ble_host::{GattServer, HostEvent, HostStack, Uuid};
use ble_link::{AddressType, ConnectionParams, DeviceAddress, UpdateRequest};
use ble_phy::{Environment, NodeConfig, Position, Simulation};
use injectable::{
    new_handoff, Attacker, AttackerConfig, Mission, MissionState, MitmSlaveHalf, RewriteRule,
};
use simkit::{DriftClock, Duration, SimRng};

struct Row {
    scenario: &'static str,
    device: &'static str,
    action: &'static str,
    success: bool,
    attempts: Option<u32>,
}

fn print_table(rows: &[Row]) {
    println!();
    println!("=== Attack scenarios (paper §VI) ===");
    println!(
        "{:<10} | {:<10} | {:<34} | {:<7} | injection attempts",
        "scenario", "device", "action", "success"
    );
    println!("{}", "-".repeat(88));
    for r in rows {
        println!(
            "{:<10} | {:<10} | {:<34} | {:<7} | {}",
            r.scenario,
            r.device,
            r.action,
            if r.success { "yes" } else { "NO" },
            r.attempts
                .map(|a| a.to_string())
                .unwrap_or_else(|| "-".into())
        );
    }
    println!();
    let failures = rows.iter().filter(|r| !r.success).count();
    println!(
        "{} / {} scenario checks succeeded",
        rows.len() - failures,
        rows.len()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Generic scene: one peripheral device + central + attacker at the paper's
/// 2 m triangle. Returns after the attacker follows the connection.
struct Scene<P: ble_phy::RadioListener + 'static> {
    sim: Simulation,
    device: Rc<RefCell<P>>,
    central: Rc<RefCell<Central>>,
    attacker: Rc<RefCell<Attacker>>,
    attacker_pos: Position,
}

fn scene<P, F>(seed: u64, make: F) -> Scene<P>
where
    P: ble_phy::RadioListener + 'static,
    F: FnOnce(
        SimRng,
    ) -> (
        Rc<RefCell<P>>,
        DeviceAddress,
        Box<dyn Fn(&Rc<RefCell<P>>, &mut ble_phy::NodeCtx<'_>)>,
    ),
{
    let mut rng = SimRng::seed_from(seed);
    let mut sim = Simulation::new(Environment::indoor_default(), rng.fork());
    let (device, device_addr, starter) = make(rng.fork());
    let params = ConnectionParams::typical(&mut rng, 36);
    let central = Rc::new(RefCell::new(Central::new(
        0xA0,
        device_addr,
        params,
        rng.fork(),
    )));
    let attacker = Rc::new(RefCell::new(Attacker::new(AttackerConfig {
        target_slave: Some(device_addr),
        ..AttackerConfig::default()
    })));
    let attacker_pos = Position::new(0.0, -2.0);
    let d = sim.add_node(
        NodeConfig::new("victim", Position::new(0.0, 0.0))
            .with_clock(DriftClock::realistic(50.0, &mut rng).with_jitter_us(1.0)),
        device.clone(),
    );
    let c = sim.add_node(
        NodeConfig::new("phone", Position::new(2.0, 0.0))
            .with_clock(DriftClock::realistic(50.0, &mut rng).with_jitter_us(1.0)),
        central.clone(),
    );
    let a = sim.add_node(
        NodeConfig::new("attacker", attacker_pos)
            .with_clock(DriftClock::realistic(20.0, &mut rng).with_jitter_us(1.0)),
        attacker.clone(),
    );
    {
        let device = device.clone();
        sim.with_ctx(d, |ctx| starter(&device, ctx));
    }
    {
        let central = central.clone();
        sim.with_ctx(c, |ctx| central.borrow_mut().start(ctx));
    }
    {
        let attacker = attacker.clone();
        sim.with_ctx(a, |ctx| attacker.borrow_mut().start(ctx));
    }
    let mut scene = Scene {
        sim,
        device,
        central,
        attacker,
        attacker_pos,
    };
    for _ in 0..100 {
        scene.sim.run_for(Duration::from_millis(100));
        let ok = scene.central.borrow().ll.is_connected()
            && scene
                .attacker
                .borrow()
                .connection()
                .map(|t| t.has_slave_seq())
                .unwrap_or(false);
        if ok {
            break;
        }
    }
    scene.sim.run_for(Duration::from_millis(400));
    scene
}

fn inject_att<P: ble_phy::RadioListener>(scene: &mut Scene<P>, att: Vec<u8>) -> Option<u32> {
    scene.attacker.borrow_mut().arm(Mission::InjectAtt { att });
    for _ in 0..200 {
        scene.sim.run_for(Duration::from_millis(200));
        if scene.attacker.borrow().mission_state() == MissionState::Complete {
            return scene.attacker.borrow().stats().attempts_to_first_success();
        }
    }
    None
}

fn hacked_host(seed: u64) -> Box<HostStack> {
    let mut server = GattServer::new();
    server
        .service(Uuid::GAP_SERVICE)
        .characteristic(Uuid::DEVICE_NAME, props::READ, b"Hacked".to_vec())
        .finish();
    Box::new(HostStack::new(
        DeviceAddress::new([0xAD; 6], AddressType::Random),
        server,
        SimRng::seed_from(seed),
    ))
}

/// An ATT action to inject plus the device-state predicate proving it took
/// effect.
type BulbAction = (&'static str, Vec<u8>, Box<dyn Fn(&Lightbulb) -> bool>);

fn scenario_a(rows: &mut Vec<Row>) {
    // Lightbulb: off, colour, brightness.
    let bulb_actions: [BulbAction; 4] = [
        ("turn on", bulb_payloads::power_on(), Box::new(|b| b.app.on)),
        (
            "turn off",
            bulb_payloads::power_off(),
            Box::new(|b| !b.app.on),
        ),
        (
            "set colour to red",
            bulb_payloads::colour(255, 0, 0),
            Box::new(|b| b.app.rgb == (255, 0, 0)),
        ),
        (
            "set brightness to 10%",
            bulb_payloads::brightness(10),
            Box::new(|b| b.app.brightness == 10),
        ),
    ];
    for (i, (action, payload, check)) in bulb_actions.into_iter().enumerate() {
        let mut s = scene(100 + i as u64, |rng| {
            let bulb = Rc::new(RefCell::new(Lightbulb::new(0xB1, rng)));
            let addr = bulb.borrow().ll.address();
            (
                bulb,
                addr,
                Box::new(
                    |b: &Rc<RefCell<Lightbulb>>, ctx: &mut ble_phy::NodeCtx<'_>| {
                        b.borrow_mut().start(ctx)
                    },
                ),
            )
        });
        let handle = s.device.borrow().control_handle();
        let attempts = inject_att(
            &mut s,
            AttPdu::WriteRequest {
                handle,
                value: payload,
            }
            .to_bytes(),
        );
        rows.push(Row {
            scenario: "A",
            device: "lightbulb",
            action,
            success: attempts.is_some() && check(&s.device.borrow()),
            attempts,
        });
    }
    // Keyfob: ring.
    let mut s = scene(110, |rng| {
        let fob = Rc::new(RefCell::new(Keyfob::new(0xF0, rng)));
        let addr = fob.borrow().ll.address();
        (
            fob,
            addr,
            Box::new(|f: &Rc<RefCell<Keyfob>>, ctx: &mut ble_phy::NodeCtx<'_>| {
                f.borrow_mut().start(ctx)
            }),
        )
    });
    let handle = s.device.borrow().alert_handle();
    let attempts = inject_att(
        &mut s,
        AttPdu::WriteRequest {
            handle,
            value: vec![2],
        }
        .to_bytes(),
    );
    rows.push(Row {
        scenario: "A",
        device: "keyfob",
        action: "make it ring (high alert)",
        success: attempts.is_some() && s.device.borrow().app.rings > 0,
        attempts,
    });
    // Smartwatch: forged SMS.
    let mut s = scene(111, |rng| {
        let watch = Rc::new(RefCell::new(Smartwatch::new(0xCC, rng)));
        let addr = watch.borrow().ll.address();
        (
            watch,
            addr,
            Box::new(
                |w: &Rc<RefCell<Smartwatch>>, ctx: &mut ble_phy::NodeCtx<'_>| {
                    w.borrow_mut().start(ctx)
                },
            ),
        )
    });
    let handle = s.device.borrow().message_handle();
    let attempts = inject_att(
        &mut s,
        AttPdu::WriteRequest {
            handle,
            value: b"Forged SMS".to_vec(),
        }
        .to_bytes(),
    );
    rows.push(Row {
        scenario: "A",
        device: "smartwatch",
        action: "deliver a forged SMS",
        success: attempts.is_some()
            && s.device
                .borrow()
                .inbox_strings()
                .contains(&"Forged SMS".to_string()),
        attempts,
    });
}

fn scenario_b(rows: &mut Vec<Row>) {
    let outcomes = [
        (
            "lightbulb",
            run_b_peripheral(120, |rng| Lightbulb::new(0xB1, rng)),
        ),
        (
            "keyfob",
            run_b_peripheral(121, |rng| Keyfob::new(0xF0, rng)),
        ),
        (
            "smartwatch",
            run_b_peripheral(122, |rng| Smartwatch::new(0xCC, rng)),
        ),
    ];
    for (device, (success, attempts)) in outcomes {
        rows.push(Row {
            scenario: "B",
            device,
            action: "evict slave, serve name 'Hacked'",
            success,
            attempts,
        });
    }
}

/// Runs scenario B against one peripheral type.
fn run_b_peripheral<A: PeripheralApp + 'static>(
    seed: u64,
    make: impl FnOnce(SimRng) -> Peripheral<A>,
) -> (bool, Option<u32>) {
    let mut s = scene(seed, |rng| {
        let mut peripheral = make(rng);
        peripheral.auto_readvertise = false;
        let peripheral = Rc::new(RefCell::new(peripheral));
        let addr = peripheral.borrow().ll.address();
        (
            peripheral,
            addr,
            Box::new(
                |p: &Rc<RefCell<Peripheral<A>>>, ctx: &mut ble_phy::NodeCtx<'_>| {
                    p.borrow_mut().start(ctx)
                },
            ),
        )
    });
    s.central.borrow_mut().auto_reconnect = false;
    s.attacker.borrow_mut().arm(Mission::HijackSlave {
        host: hacked_host(seed),
    });
    for _ in 0..300 {
        s.sim.run_for(Duration::from_millis(200));
        if s.attacker.borrow().mission_state() == MissionState::TakenOver {
            break;
        }
    }
    if s.attacker.borrow().mission_state() != MissionState::TakenOver {
        return (false, None);
    }
    // The master reads the Device Name from the impostor.
    let name_handle = s
        .attacker
        .borrow()
        .takeover_host()
        .unwrap()
        .server()
        .handle_of(Uuid::DEVICE_NAME)
        .unwrap();
    s.central.borrow_mut().host.read(name_handle);
    s.sim.run_for(Duration::from_secs(2));
    let got_hacked = s
        .central
        .borrow()
        .event_log
        .iter()
        .any(|e| matches!(e, HostEvent::ReadResponse { value } if value == b"Hacked"));
    let attempts = s
        .attacker
        .borrow()
        .stats()
        .attempts_per_success
        .last()
        .copied();
    (
        got_hacked && !s.device.borrow().ll.is_connected() && s.central.borrow().ll.is_connected(),
        attempts,
    )
}

fn scenario_c(rows: &mut Vec<Row>) {
    let mut s = scene(140, |rng| {
        let bulb = Rc::new(RefCell::new(Lightbulb::new(0xB1, rng)));
        let addr = bulb.borrow().ll.address();
        (
            bulb,
            addr,
            Box::new(
                |b: &Rc<RefCell<Lightbulb>>, ctx: &mut ble_phy::NodeCtx<'_>| {
                    b.borrow_mut().start(ctx)
                },
            ),
        )
    });
    s.central.borrow_mut().auto_reconnect = false;
    let handle = s.device.borrow().control_handle();
    s.attacker.borrow_mut().arm(Mission::HijackMaster {
        update: UpdateRequest {
            win_size: 2,
            win_offset: 3,
            interval: 60,
            latency: 0,
            timeout: 300,
        },
        instant_delta: 6,
        host: Box::new(HostStack::new(
            DeviceAddress::new([0xAD; 6], AddressType::Random),
            GattServer::new(),
            SimRng::seed_from(555),
        )),
        on_takeover_writes: vec![(handle, bulb_payloads::colour(9, 9, 9))],
        mitm: None,
    });
    for _ in 0..300 {
        s.sim.run_for(Duration::from_millis(200));
        if s.attacker.borrow().mission_state() == MissionState::TakenOver {
            break;
        }
    }
    s.sim.run_for(Duration::from_secs(5));
    let success = s.attacker.borrow().mission_state() == MissionState::TakenOver
        && s.device.borrow().app.rgb == (9, 9, 9)
        && !s.central.borrow().ll.is_connected()
        && s.device.borrow().ll.is_connected();
    rows.push(Row {
        scenario: "C",
        device: "lightbulb",
        action: "hijack master, drive colour",
        success,
        attempts: s
            .attacker
            .borrow()
            .stats()
            .attempts_per_success
            .first()
            .copied(),
    });
}

fn scenario_d(rows: &mut Vec<Row>) {
    let mut s = scene(150, |rng| {
        let watch = Rc::new(RefCell::new(Smartwatch::new(0xCC, rng)));
        let addr = watch.borrow().ll.address();
        (
            watch,
            addr,
            Box::new(
                |w: &Rc<RefCell<Smartwatch>>, ctx: &mut ble_phy::NodeCtx<'_>| {
                    w.borrow_mut().start(ctx)
                },
            ),
        )
    });
    s.central.borrow_mut().auto_reconnect = false;
    let msg_handle = s.device.borrow().message_handle();

    let handoff = new_handoff();
    let mirror = {
        let mut host = HostStack::new(
            DeviceAddress::new([0xEE; 6], AddressType::Random),
            GattServer::new(),
            SimRng::seed_from(7),
        );
        host.server_mut()
            .service(Uuid::GAP_SERVICE)
            .characteristic(Uuid::DEVICE_NAME, props::READ, b"SmartWatch".to_vec())
            .finish();
        host.server_mut()
            .service(ble_devices::WATCH_SERVICE_UUID)
            .characteristic(
                ble_devices::WATCH_MESSAGE_UUID,
                props::WRITE | props::WRITE_WITHOUT_RESPONSE,
                vec![],
            )
            .finish();
        host
    };
    let rewrite = RewriteRule {
        handle: Some(msg_handle),
        find: b"noon".to_vec(),
        replace: b"MIDNIGHT".to_vec(),
    };
    let half = Rc::new(RefCell::new(MitmSlaveHalf::new(
        mirror,
        handoff.clone(),
        vec![rewrite],
    )));
    let half_id = s
        .sim
        .add_node(NodeConfig::new("mitm-half", s.attacker_pos), half.clone());
    {
        let half = half.clone();
        s.sim.with_ctx(half_id, |ctx| half.borrow_mut().start(ctx));
    }
    s.attacker.borrow_mut().arm(Mission::HijackMaster {
        update: UpdateRequest {
            win_size: 2,
            win_offset: 3,
            interval: 60,
            latency: 0,
            timeout: 300,
        },
        instant_delta: 6,
        host: Box::new(HostStack::new(
            DeviceAddress::new([0xAD; 6], AddressType::Random),
            GattServer::new(),
            SimRng::seed_from(556),
        )),
        on_takeover_writes: vec![],
        mitm: Some(handoff.clone()),
    });
    for _ in 0..300 {
        s.sim.run_for(Duration::from_millis(200));
        if s.attacker.borrow().mission_state() == MissionState::TakenOver {
            break;
        }
    }
    // Legit phone sends an SMS; the MITM rewrites it.
    s.central
        .borrow_mut()
        .write(msg_handle, b"meet at noon".to_vec());
    s.sim.run_for(Duration::from_secs(5));
    let inbox = s.device.borrow().inbox_strings();
    let success =
        inbox.contains(&"meet at MIDNIGHT".to_string()) && !handoff.borrow().intercepted.is_empty();
    rows.push(Row {
        scenario: "D",
        device: "smartwatch",
        action: "MITM: rewrite SMS on the fly",
        success,
        attempts: s
            .attacker
            .borrow()
            .stats()
            .attempts_per_success
            .first()
            .copied(),
    });
}

fn main() {
    let mut rows = Vec::new();
    scenario_a(&mut rows);
    scenario_b(&mut rows);
    scenario_c(&mut rows);
    scenario_d(&mut rows);
    print_table(&rows);
}
