//! Reproduces the paper's §VI scenario table: all four attack scenarios
//! against the three victim devices, reporting success and attempt counts.
//!
//! Paper claims being checked:
//!   A — "injection attacks targeting three commercial devices" triggering
//!       lightbulb power/colour/brightness, keyfob ring, smartwatch SMS;
//!   B — Slave hijacking serving a forged "Hacked" device name, on all
//!       three devices;
//!   C — Master hijacking driving the same features as scenario A;
//!   D — MITM rewriting an SMS and RGB values on the fly.

use ble_devices::{bulb_payloads, Keyfob, Lightbulb, Smartwatch};
use ble_host::att::AttPdu;
use ble_host::gatt::props;
use ble_host::{GattServer, HostEvent, HostStack, Uuid};
use ble_link::{AddressType, DeviceAddress, UpdateRequest};
use ble_phy::NodeConfig;
use ble_scenario::{DeviceKind, Scenario, ScenarioBuilder};
use injectable::{new_handoff, Mission, MissionState, MitmSlaveHalf, RewriteRule};
use simkit::{Duration, SimRng};

struct Row {
    scenario: &'static str,
    device: &'static str,
    action: &'static str,
    success: bool,
    attempts: Option<u32>,
}

fn print_table(rows: &[Row]) {
    println!();
    println!("=== Attack scenarios (paper §VI) ===");
    println!(
        "{:<10} | {:<10} | {:<34} | {:<7} | injection attempts",
        "scenario", "device", "action", "success"
    );
    println!("{}", "-".repeat(88));
    for r in rows {
        println!(
            "{:<10} | {:<10} | {:<34} | {:<7} | {}",
            r.scenario,
            r.device,
            r.action,
            if r.success { "yes" } else { "NO" },
            r.attempts
                .map(|a| a.to_string())
                .unwrap_or_else(|| "-".into())
        );
    }
    println!();
    let failures = rows.iter().filter(|r| !r.success).count();
    println!(
        "{} / {} scenario checks succeeded",
        rows.len() - failures,
        rows.len()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Generic scene: one peripheral device + central + attacker at the paper's
/// 2 m triangle. Returns after the attacker follows the connection.
fn scene(seed: u64, kind: DeviceKind) -> Scenario {
    let mut s = ScenarioBuilder::scene(seed).device(kind).build();
    s.run_until_following();
    s
}

fn inject_att(s: &mut Scenario, att: Vec<u8>) -> Option<u32> {
    // Arming pre-forges the Link-Layer payload (L2CAP fragmentation
    // included) once; every retry below then encodes into an inline `Pdu`
    // without rebuilding the byte vectors per attempt.
    s.attacker_mut().arm(Mission::InjectAtt { att });
    for _ in 0..200 {
        s.run_for(Duration::from_millis(200));
        if s.attacker().mission_state() == MissionState::Complete {
            return s.attacker().stats().attempts_to_first_success();
        }
    }
    None
}

fn hacked_host(seed: u64) -> Box<HostStack> {
    let mut server = GattServer::new();
    server
        .service(Uuid::GAP_SERVICE)
        .characteristic(Uuid::DEVICE_NAME, props::READ, b"Hacked".to_vec())
        .finish();
    Box::new(HostStack::new(
        DeviceAddress::new([0xAD; 6], AddressType::Random),
        server,
        SimRng::seed_from(seed),
    ))
}

/// An ATT action to inject plus the device-state predicate proving it took
/// effect.
type BulbAction = (&'static str, Vec<u8>, Box<dyn Fn(&Lightbulb) -> bool>);

fn scenario_a(rows: &mut Vec<Row>) {
    // Lightbulb: off, colour, brightness.
    let bulb_actions: [BulbAction; 4] = [
        ("turn on", bulb_payloads::power_on(), Box::new(|b| b.app.on)),
        (
            "turn off",
            bulb_payloads::power_off(),
            Box::new(|b| !b.app.on),
        ),
        (
            "set colour to red",
            bulb_payloads::colour(255, 0, 0),
            Box::new(|b| b.app.rgb == (255, 0, 0)),
        ),
        (
            "set brightness to 10%",
            bulb_payloads::brightness(10),
            Box::new(|b| b.app.brightness == 10),
        ),
    ];
    for (i, (action, payload, check)) in bulb_actions.into_iter().enumerate() {
        let mut s = scene(100 + i as u64, DeviceKind::Lightbulb);
        let handle = s.victim_control_handle();
        let attempts = inject_att(
            &mut s,
            AttPdu::WriteRequest {
                handle,
                value: payload,
            }
            .to_bytes(),
        );
        rows.push(Row {
            scenario: "A",
            device: "lightbulb",
            action,
            success: attempts.is_some() && check(s.victim::<Lightbulb>()),
            attempts,
        });
    }
    // Keyfob: ring.
    let mut s = scene(110, DeviceKind::Keyfob);
    let handle = s.victim_control_handle();
    let attempts = inject_att(
        &mut s,
        AttPdu::WriteRequest {
            handle,
            value: vec![2],
        }
        .to_bytes(),
    );
    rows.push(Row {
        scenario: "A",
        device: "keyfob",
        action: "make it ring (high alert)",
        success: attempts.is_some() && s.victim::<Keyfob>().app.rings > 0,
        attempts,
    });
    // Smartwatch: forged SMS.
    let mut s = scene(111, DeviceKind::Smartwatch);
    let handle = s.victim_control_handle();
    let attempts = inject_att(
        &mut s,
        AttPdu::WriteRequest {
            handle,
            value: b"Forged SMS".to_vec(),
        }
        .to_bytes(),
    );
    rows.push(Row {
        scenario: "A",
        device: "smartwatch",
        action: "deliver a forged SMS",
        success: attempts.is_some()
            && s.victim::<Smartwatch>()
                .inbox_strings()
                .contains(&"Forged SMS".to_string()),
        attempts,
    });
}

fn scenario_b(rows: &mut Vec<Row>) {
    let outcomes = [
        ("lightbulb", run_b_peripheral(120, DeviceKind::Lightbulb)),
        ("keyfob", run_b_peripheral(121, DeviceKind::Keyfob)),
        ("smartwatch", run_b_peripheral(122, DeviceKind::Smartwatch)),
    ];
    for (device, (success, attempts)) in outcomes {
        rows.push(Row {
            scenario: "B",
            device,
            action: "evict slave, serve name 'Hacked'",
            success,
            attempts,
        });
    }
}

/// Runs scenario B against one peripheral type.
fn run_b_peripheral(seed: u64, kind: DeviceKind) -> (bool, Option<u32>) {
    let mut s = ScenarioBuilder::scene(seed).device(kind).build();
    s.set_victim_auto_readvertise(false);
    s.run_until_following();
    s.central_mut().auto_reconnect = false;
    s.attacker_mut().arm(Mission::HijackSlave {
        host: hacked_host(seed),
    });
    for _ in 0..300 {
        s.run_for(Duration::from_millis(200));
        if s.attacker().mission_state() == MissionState::TakenOver {
            break;
        }
    }
    if s.attacker().mission_state() != MissionState::TakenOver {
        return (false, None);
    }
    // The master reads the Device Name from the impostor.
    let name_handle = s
        .attacker()
        .takeover_host()
        .unwrap()
        .server()
        .handle_of(Uuid::DEVICE_NAME)
        .unwrap();
    s.central_mut().host.read(name_handle);
    s.run_for(Duration::from_secs(2));
    let got_hacked = s
        .central()
        .event_log
        .iter()
        .any(|e| matches!(e, HostEvent::ReadResponse { value } if value == b"Hacked"));
    let attempts = s.attacker().stats().attempts_per_success.last().copied();
    (
        got_hacked && !s.victim_connected() && s.central().ll.is_connected(),
        attempts,
    )
}

fn scenario_c(rows: &mut Vec<Row>) {
    let mut s = scene(140, DeviceKind::Lightbulb);
    s.central_mut().auto_reconnect = false;
    let handle = s.victim_control_handle();
    s.attacker_mut().arm(Mission::HijackMaster {
        update: UpdateRequest {
            win_size: 2,
            win_offset: 3,
            interval: 60,
            latency: 0,
            timeout: 300,
        },
        instant_delta: 6,
        host: Box::new(HostStack::new(
            DeviceAddress::new([0xAD; 6], AddressType::Random),
            GattServer::new(),
            SimRng::seed_from(555),
        )),
        on_takeover_writes: vec![(handle, bulb_payloads::colour(9, 9, 9))],
        mitm: None,
    });
    for _ in 0..300 {
        s.run_for(Duration::from_millis(200));
        if s.attacker().mission_state() == MissionState::TakenOver {
            break;
        }
    }
    s.run_for(Duration::from_secs(5));
    let success = s.attacker().mission_state() == MissionState::TakenOver
        && s.victim::<Lightbulb>().app.rgb == (9, 9, 9)
        && !s.central().ll.is_connected()
        && s.victim_connected();
    rows.push(Row {
        scenario: "C",
        device: "lightbulb",
        action: "hijack master, drive colour",
        success,
        attempts: s.attacker().stats().attempts_per_success.first().copied(),
    });
}

fn scenario_d(rows: &mut Vec<Row>) {
    let mut s = scene(150, DeviceKind::Smartwatch);
    s.central_mut().auto_reconnect = false;
    let msg_handle = s.victim_control_handle();

    let handoff = new_handoff();
    let mirror = {
        let mut host = HostStack::new(
            DeviceAddress::new([0xEE; 6], AddressType::Random),
            GattServer::new(),
            SimRng::seed_from(7),
        );
        host.server_mut()
            .service(Uuid::GAP_SERVICE)
            .characteristic(Uuid::DEVICE_NAME, props::READ, b"SmartWatch".to_vec())
            .finish();
        host.server_mut()
            .service(ble_devices::WATCH_SERVICE_UUID)
            .characteristic(
                ble_devices::WATCH_MESSAGE_UUID,
                props::WRITE | props::WRITE_WITHOUT_RESPONSE,
                vec![],
            )
            .finish();
        host
    };
    let rewrite = RewriteRule {
        handle: Some(msg_handle),
        find: b"noon".to_vec(),
        replace: b"MIDNIGHT".to_vec(),
    };
    let half = MitmSlaveHalf::new(mirror, handoff.clone(), vec![rewrite]);
    let half_id = s
        .world
        .add_node(NodeConfig::new("mitm-half", s.attacker_pos), half);
    s.world.start(half_id);
    s.attacker_mut().arm(Mission::HijackMaster {
        update: UpdateRequest {
            win_size: 2,
            win_offset: 3,
            interval: 60,
            latency: 0,
            timeout: 300,
        },
        instant_delta: 6,
        host: Box::new(HostStack::new(
            DeviceAddress::new([0xAD; 6], AddressType::Random),
            GattServer::new(),
            SimRng::seed_from(556),
        )),
        on_takeover_writes: vec![],
        mitm: Some(handoff.clone()),
    });
    for _ in 0..300 {
        s.run_for(Duration::from_millis(200));
        if s.attacker().mission_state() == MissionState::TakenOver {
            break;
        }
    }
    // Legit phone sends an SMS; the MITM rewrites it.
    s.central_mut().write(msg_handle, b"meet at noon".to_vec());
    s.run_for(Duration::from_secs(5));
    let inbox = s.victim::<Smartwatch>().inbox_strings();
    let success =
        inbox.contains(&"meet at MIDNIGHT".to_string()) && !handoff.lock().intercepted.is_empty();
    rows.push(Row {
        scenario: "D",
        device: "smartwatch",
        action: "MITM: rewrite SMS on the fly",
        success,
        attempts: s.attacker().stats().attempts_per_success.first().copied(),
    });
}

fn main() {
    let mut rows = Vec::new();
    scenario_a(&mut rows);
    scenario_b(&mut rows);
    scenario_c(&mut rows);
    scenario_d(&mut rows);
    print_table(&rows);
}
