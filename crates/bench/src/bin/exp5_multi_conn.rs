//! Experiment 5: injection success vs concurrent connection count.
//!
//! The paper's experiments attack a Central with a single connection; this
//! sweep loads the Central's fixed connection slots with 1–8 concurrent
//! peripherals (slot-pooled multi-connection host) and aims the attacker at
//! the *newest* connection. The metric stays Figure 9's: injection attempts
//! before the first confirmed success. Establishment is serialised by the
//! Central, so the swept axis is "how many live connections share the
//! Central's radio and packet pool while the attack runs".

use bench::trial::{canonical_write_payload, trial_seed, TrialOutcome};
use bench::{print_series_to, Cli, SeriesReport};
use ble_devices::Lightbulb;
use ble_link::Llid;
use ble_scenario::ScenarioBuilder;
use injectable::Mission;
use simkit::Duration;

/// One multi-connection trial: bring up `conns` concurrent connections,
/// aim the attacker at the newest one, inject until the first confirmed
/// success or the budget runs out.
fn run_multi_conn_trial(seed: u64, conns: usize) -> TrialOutcome {
    let mut sc = ScenarioBuilder::paper_rig(seed)
        .multi_peripheral(conns)
        .build();
    // Aim before the world runs: the sniffer must see the target's
    // CONNECT_IND, and establishment is serialised with the victim first.
    let target = if conns > 1 {
        *sc.extra_conn_handles
            .last()
            .expect("multi_peripheral(n>1) yields extra handles")
    } else {
        sc.central().conn_handles()[0]
    };
    assert!(sc.aim_attacker_at(target), "fresh handle cannot be stale");
    let failed = |sc: &ble_scenario::Scenario| TrialOutcome {
        attempts: None,
        sim_seconds: sc.now().as_micros_f64() / 1e6,
        effect_observed: false,
        metrics: None,
        telemetry_downgraded: false,
    };
    // Serial establishment: every slot must hold a live connection before
    // the attack phase starts, or the row would not measure `conns`
    // concurrent connections at all.
    if !sc.wait_connections(conns, Duration::from_secs(120)) {
        return failed(&sc);
    }
    // Attacker synchronisation against the target connection. The sniffer
    // scans one advertising channel at a time, so it usually misses the
    // target's one CONNECT_IND during serial bring-up — and an established
    // slot never sends another. Bounce the target link whenever the
    // attacker has gone a while without following: the slot auto-reconnects
    // with a fresh CONNECT_IND for the sniffer to latch.
    let sync_deadline = sc.now() + Duration::from_secs(120);
    let mut unfollowed_ticks = 0u32;
    let synced = loop {
        if sc.now() >= sync_deadline {
            break false;
        }
        sc.run_for(Duration::from_millis(100));
        let following = sc
            .attacker()
            .connection()
            .map(|c| c.has_slave_seq())
            .unwrap_or(false);
        if following && sc.live_connections() >= conns {
            break true;
        }
        if sc.attacker().connection().is_some() {
            unfollowed_ticks = 0;
        } else {
            unfollowed_ticks += 1;
            if unfollowed_ticks >= 30 {
                unfollowed_ticks = 0;
                // Each bounce releases the slot and bumps its generation:
                // re-fetch the current handle instead of re-using the stale
                // build-time one.
                let slot = target.index();
                if let Some(current) = sc.central().conn_manager().handle_at(slot) {
                    sc.bounce_connection(current);
                }
                let attacker_id = sc.attacker_id.expect("paper rig has an attacker");
                sc.world
                    .with_node_ctx::<injectable::Attacker, _>(attacker_id, |a, ctx| {
                        a.restart_resync(ctx)
                    });
            }
        }
    };
    if !synced {
        return failed(&sc);
    }
    sc.attacker_mut().arm(Mission::InjectRaw {
        llid: Llid::StartOrComplete,
        payload: canonical_write_payload(),
        wanted_successes: 1,
    });
    let deadline = sc.now() + Duration::from_secs(120);
    let mut attempts = None;
    let mut stalled_ticks = 0u32;
    while sc.now() < deadline {
        sc.run_for(Duration::from_millis(200));
        if sc.attacker().stats().successes() >= 1 {
            attempts = sc.attacker().stats().attempts_to_first_success();
            break;
        }
        if sc.attacker().resync_exhausted() {
            break;
        }
        // The Central re-establishes dropped slots on its own (fresh
        // CONNECT_IND), so a desynchronised attacker only needs its scan
        // campaign restarted — no harness-side bounce.
        if sc.attacker().connection().is_some() {
            stalled_ticks = 0;
        } else {
            stalled_ticks += 1;
            if stalled_ticks >= 10 {
                stalled_ticks = 0;
                let attacker_id = sc.attacker_id.expect("paper rig has an attacker");
                sc.world
                    .with_node_ctx::<injectable::Attacker, _>(attacker_id, |a, ctx| {
                        a.restart_resync(ctx)
                    });
            }
        }
    }
    // Observable effect on the *target* peripheral's application.
    let effect_observed = if conns > 1 {
        sc.extra_peripheral::<Lightbulb>(conns - 2).app.pings > 0
    } else {
        sc.victim::<Lightbulb>().app.pings > 0
    };
    TrialOutcome {
        attempts,
        sim_seconds: sc.now().as_micros_f64() / 1e6,
        effect_observed,
        metrics: None,
        telemetry_downgraded: false,
    }
}

fn main() {
    let cli = Cli::parse(25);
    let base = cli.seed_base(5_000);
    let mut rows = Vec::new();
    for conns in [1usize, 2, 4, 8] {
        let row_start = bench::wallclock::Stopwatch::start();
        // Serial trials: each builds an (up to) 9-node world, and the
        // multi-connection scheduling is what the row measures — seed
        // order is the artefact order either way.
        let outcomes: Vec<TrialOutcome> = (0..cli.trials)
            .map(|i| run_multi_conn_trial(trial_seed(base + conns as u64, i), conns))
            .collect();
        rows.push(
            SeriesReport::from_outcomes("connections", conns as f64, &outcomes)
                .with_throughput(row_start.elapsed_s()),
        );
        eprintln!("connections {conns}: done");
    }
    print_series_to(
        "exp5_multi_conn",
        "Experiment 5 — Concurrent connections (slot-pooled Central)",
        &rows,
        cli.json.as_deref(),
    );
}
