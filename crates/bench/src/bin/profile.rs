//! Per-phase profiler: runs one close-range trial with a JSONL telemetry
//! sink, then renders the span records three ways:
//!
//!   1. a per-phase table (count, total/self sim time, total/self wall time),
//!   2. a per-channel airtime table (from `channel-airtime` span exits),
//!   3. a collapsed-stack file in the common flamegraph input format
//!      (`frame;frame count`, one line per distinct stack — feed it to any
//!      `flamegraph.pl`-compatible renderer).
//!
//! Collapsed-stack counts are **self sim-time in µs**, so the flamegraph is
//! byte-stable across equally-seeded runs; wall-clock only appears in the
//! (clearly marked) table columns.
//!
//! Usage:
//!   profile [--seed N] [--out DIR]
//!
//! Writes `profile.folded` (and the trace it was derived from) under the
//! artefact directory, or `--out DIR` when given.

use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::PathBuf;
use std::process::ExitCode;

use bench::report::artefact_dir;
use bench::telemetry::TelemetryMode;
use bench::trial::{run_trial, TrialConfig};
use ble_telemetry::{parse_line, SpanKind, TelemetryEvent, TelemetryRecord};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 42u64;
    let mut out_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(seed);
            }
            "--out" => {
                i += 1;
                out_dir = args.get(i).map(PathBuf::from);
            }
            other => {
                eprintln!("profile: unknown argument {other}");
                eprintln!("usage: profile [--seed N] [--out DIR]");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let dir = out_dir.unwrap_or_else(artefact_dir);
    if let Err(err) = std::fs::create_dir_all(&dir) {
        eprintln!("profile: cannot create {}: {err}", dir.display());
        return ExitCode::FAILURE;
    }
    let trace_path = dir.join("profile-trial.jsonl");

    println!("[profile] one close-range trial (seed {seed}) with a JSONL sink…");
    let mut cfg = TrialConfig::new(seed);
    cfg.telemetry = TelemetryMode::Jsonl(trace_path.clone());
    let outcome = run_trial(&cfg);
    println!(
        "[profile] trial done: attempts={:?} sim_seconds={:.1}",
        outcome.attempts, outcome.sim_seconds
    );

    let file = match std::fs::File::open(&trace_path) {
        Ok(f) => f,
        Err(err) => {
            eprintln!("profile: cannot open {}: {err}", trace_path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut records = Vec::new();
    for line in std::io::BufReader::new(file).lines() {
        let Ok(line) = line else { break };
        if let Some(r) = parse_line(&line) {
            records.push(r);
        }
    }
    if records.is_empty() {
        eprintln!("profile: no records in {}", trace_path.display());
        return ExitCode::FAILURE;
    }

    print!("{}", phase_table(&records));
    print!("{}", airtime_table(&records));

    let folded = collapse_stacks(&records);
    let folded_path = dir.join("profile.folded");
    match std::fs::write(&folded_path, &folded) {
        Ok(()) => {
            println!("[artefact] {}", trace_path.display());
            println!("[artefact] {} (collapsed stacks)", folded_path.display());
        }
        Err(err) => {
            eprintln!("profile: cannot write {}: {err}", folded_path.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Per-kind aggregate over the trace's span exits.
#[derive(Default, Clone, Copy)]
struct Agg {
    count: u64,
    sim_ns: u64,
    self_sim_ns: u64,
    wall_ns: u64,
    self_wall_ns: u64,
}

fn phase_table(records: &[TelemetryRecord]) -> String {
    use std::fmt::Write as _;
    let mut aggs: BTreeMap<usize, Agg> = BTreeMap::new();
    for r in records {
        if let TelemetryEvent::SpanExit {
            kind,
            sim_ns,
            wall_ns,
            self_sim_ns,
            self_wall_ns,
            ..
        } = &r.event
        {
            let a = aggs.entry(kind.index()).or_default();
            a.count += 1;
            a.sim_ns += sim_ns;
            a.self_sim_ns += self_sim_ns;
            a.wall_ns += wall_ns;
            a.self_wall_ns += self_wall_ns;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out);
    let _ = writeln!(out, "=== per-phase profile ===");
    let _ = writeln!(
        out,
        "{:<16} {:>7} {:>12} {:>12} {:>12} {:>12}",
        "phase", "count", "sim_ms", "self_sim_ms", "wall_ms*", "self_wall_ms*"
    );
    let _ = writeln!(out, "{}", "-".repeat(78));
    for (idx, a) in &aggs {
        let _ = writeln!(
            out,
            "{:<16} {:>7} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            SpanKind::ALL[*idx].as_str(),
            a.count,
            a.sim_ns as f64 / 1e6,
            a.self_sim_ns as f64 / 1e6,
            a.wall_ns as f64 / 1e6,
            a.self_wall_ns as f64 / 1e6,
        );
    }
    let _ = writeln!(
        out,
        "(* wall-clock columns are machine-dependent and excluded from \
         artefact byte-identity)"
    );
    out
}

fn airtime_table(records: &[TelemetryRecord]) -> String {
    use std::fmt::Write as _;
    // channel → (tx count, sim airtime ns)
    let mut lanes: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    for r in records {
        if let TelemetryEvent::SpanExit {
            kind: SpanKind::ChannelAirtime,
            detail,
            sim_ns,
            ..
        } = &r.event
        {
            let lane = lanes.entry(*detail).or_insert((0, 0));
            lane.0 += 1;
            lane.1 += sim_ns;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out);
    let _ = writeln!(out, "=== per-channel airtime (sim time) ===");
    if lanes.is_empty() {
        let _ = writeln!(out, "(no channel-airtime spans in this trace)");
        return out;
    }
    let max = lanes.values().map(|(_, ns)| *ns).max().unwrap_or(1).max(1);
    for (ch, (count, ns)) in &lanes {
        let bar = ((*ns * 40).div_ceil(max)).min(40) as usize;
        let _ = writeln!(
            out,
            "  ch {ch:>2} | {:<40} {count:>5} tx {:>9.3} ms",
            "#".repeat(bar),
            *ns as f64 / 1e6,
        );
    }
    out
}

/// Folds the trace's span exits into collapsed-stack lines
/// (`track;frame;frame count`). One track per emitting node (rooted at its
/// label) plus a `harness` track for node-less spans — spans from different
/// nodes interleave in the trace without truly nesting, so chaining them
/// into one stack would manufacture fictitious parent/child edges. Counts
/// are **self sim-time in µs** so the output is deterministic.
fn collapse_stacks(records: &[TelemetryRecord]) -> String {
    // Node labels for the stack roots.
    let mut labels: BTreeMap<u32, String> = BTreeMap::new();
    for r in records {
        if let (Some(node), TelemetryEvent::NodeAdded { label }) = (r.node, &r.event) {
            labels.entry(node).or_insert_with(|| label.clone());
        }
    }
    let root = |node: Option<u32>| -> String {
        match node {
            Some(n) => labels
                .get(&n)
                .cloned()
                .unwrap_or_else(|| format!("node{n}")),
            None => "harness".to_string(),
        }
    };
    // Per-track open-span stacks: (id, full path). Exit records carry the
    // entering node, so the track key matches on both sides.
    let mut open: BTreeMap<Option<u32>, Vec<(u32, String)>> = BTreeMap::new();
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for r in records {
        match &r.event {
            TelemetryEvent::SpanEnter { id, kind, .. } => {
                let track = open.entry(r.node).or_default();
                let path = match track.last() {
                    Some((_, parent)) => format!("{parent};{}", kind.as_str()),
                    None => format!("{};{}", root(r.node), kind.as_str()),
                };
                track.push((*id, path));
            }
            TelemetryEvent::SpanExit {
                id, self_sim_ns, ..
            } => {
                let Some(track) = open.get_mut(&r.node) else {
                    continue;
                };
                let Some(pos) = track.iter().rposition(|(oid, _)| oid == id) else {
                    continue;
                };
                let (_, path) = track.remove(pos);
                *folded.entry(path).or_insert(0) += self_sim_ns / 1_000;
            }
            // Everything that is not a span boundary contributes nothing to
            // the stacks; listed explicitly so new event kinds force a
            // decision here (R4).
            TelemetryEvent::NodeAdded { .. }
            | TelemetryEvent::TxStart { .. }
            | TelemetryEvent::TxEnd
            | TelemetryEvent::RxLock { .. }
            | TelemetryEvent::Relock { .. }
            | TelemetryEvent::RxEnd { .. }
            | TelemetryEvent::Collision { .. }
            | TelemetryEvent::InterferenceSpill { .. }
            | TelemetryEvent::Anchor { .. }
            | TelemetryEvent::WindowOpen { .. }
            | TelemetryEvent::Hop { .. }
            | TelemetryEvent::SnNesn { .. }
            | TelemetryEvent::CrcFail { .. }
            | TelemetryEvent::LlControl { .. }
            | TelemetryEvent::ConnectionEstablished { .. }
            | TelemetryEvent::ConnectionClosed { .. }
            | TelemetryEvent::SnifferSync { .. }
            | TelemetryEvent::SnifferLost { .. }
            | TelemetryEvent::InjectionAttempt { .. }
            | TelemetryEvent::HeuristicVerdict { .. }
            | TelemetryEvent::AnchorPrediction { .. }
            | TelemetryEvent::IfsDelta { .. }
            | TelemetryEvent::Takeover { .. }
            | TelemetryEvent::DetectorAlert { .. }
            | TelemetryEvent::PoolExhausted { .. }
            | TelemetryEvent::SlotDenied
            | TelemetryEvent::ConnEstablished { .. }
            | TelemetryEvent::ConnReleased { .. }
            | TelemetryEvent::PoolHighWater { .. }
            | TelemetryEvent::FaultBurst { .. }
            | TelemetryEvent::FaultEpisode { .. }
            | TelemetryEvent::FaultFrame { .. }
            | TelemetryEvent::Raw { .. } => {}
        }
    }
    let mut out = String::new();
    for (path, count) in &folded {
        if *count > 0 {
            out.push_str(&format!("{path} {count}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Instant;

    fn rec(at_us: u64, node: Option<u32>, event: TelemetryEvent) -> TelemetryRecord {
        TelemetryRecord {
            at: Instant::from_micros(at_us),
            node,
            event,
        }
    }

    fn enter(id: u32, kind: SpanKind) -> TelemetryEvent {
        TelemetryEvent::SpanEnter {
            id,
            kind,
            // Airtime spans carry their channel in `detail`.
            detail: if kind == SpanKind::ChannelAirtime {
                17
            } else {
                0
            },
        }
    }

    fn exit(id: u32, kind: SpanKind, sim_ns: u64, self_sim_ns: u64) -> TelemetryEvent {
        TelemetryEvent::SpanExit {
            id,
            kind,
            detail: if kind == SpanKind::ChannelAirtime {
                17
            } else {
                0
            },
            sim_ns,
            wall_ns: 5,
            self_sim_ns,
            self_wall_ns: 5,
        }
    }

    fn trace() -> Vec<TelemetryRecord> {
        vec![
            rec(
                0,
                Some(3),
                TelemetryEvent::NodeAdded {
                    label: "attacker".into(),
                },
            ),
            rec(0, None, enter(1, SpanKind::TrialSync)),
            rec(10, Some(3), enter(2, SpanKind::AttackerScan)),
            rec(
                500_000,
                Some(3),
                exit(2, SpanKind::AttackerScan, 490_000_000, 490_000_000),
            ),
            rec(
                500_000,
                None,
                exit(1, SpanKind::TrialSync, 500_000_000, 10_000_000),
            ),
            rec(600_000, Some(3), enter(3, SpanKind::ChannelAirtime)),
            rec(
                600_368,
                Some(3),
                exit(3, SpanKind::ChannelAirtime, 368_000, 368_000),
            ),
        ]
    }

    #[test]
    fn collapsed_stacks_track_per_node_and_count_self_time_in_us() {
        let folded = collapse_stacks(&trace());
        let lines: Vec<&str> = folded.lines().collect();
        // Harness spans and node spans live on separate tracks: the
        // attacker's scan does NOT chain under trial-sync merely because the
        // records interleave in time.
        assert!(lines.contains(&"harness;trial-sync 10000"), "{folded}");
        assert!(lines.contains(&"attacker;attacker-scan 490000"), "{folded}");
        assert!(lines.contains(&"attacker;channel-airtime 368"), "{folded}");
    }

    #[test]
    fn collapsed_stacks_nest_within_one_track() {
        // An airtime span opened while the same node's inject span is still
        // open nests beneath it.
        let t = vec![
            rec(
                0,
                Some(3),
                TelemetryEvent::NodeAdded {
                    label: "attacker".into(),
                },
            ),
            rec(0, Some(3), enter(1, SpanKind::AttackerInject)),
            rec(5, Some(3), enter(2, SpanKind::ChannelAirtime)),
            rec(
                400,
                Some(3),
                exit(2, SpanKind::ChannelAirtime, 368_000, 368_000),
            ),
            rec(
                500,
                Some(3),
                exit(1, SpanKind::AttackerInject, 500_000, 132_000),
            ),
        ];
        let folded = collapse_stacks(&t);
        assert!(
            folded.contains("attacker;attacker-inject;channel-airtime 368"),
            "{folded}"
        );
        assert!(folded.contains("attacker;attacker-inject 132"), "{folded}");
    }

    #[test]
    fn airtime_table_groups_by_channel() {
        let out = airtime_table(&trace());
        assert!(out.contains("ch 17"), "{out}");
        assert!(out.contains("1 tx"), "{out}");
    }

    #[test]
    fn phase_table_includes_every_closed_kind() {
        let out = phase_table(&trace());
        assert!(out.contains("trial-sync"));
        assert!(out.contains("attacker-scan"));
        assert!(out.contains("channel-airtime"));
        // Wall columns are marked machine-dependent.
        assert!(out.contains("wall_ms*"));
    }

    #[test]
    fn collapsed_stack_format_is_flamegraph_compatible() {
        // `frame[;frame…] count` — exactly one space, count last, no blanks.
        let folded = collapse_stacks(&trace());
        assert!(!folded.is_empty());
        for line in folded.lines() {
            let (path, count) = line.rsplit_once(' ').expect("space-separated count");
            assert!(!path.is_empty());
            assert!(count.parse::<u64>().is_ok(), "bad count in {line}");
            assert!(
                !path.contains(' '),
                "frames must not contain spaces: {line}"
            );
        }
    }
}
