//! Attacker-quality ablation: how the sniffer's anchor-timestamp noise
//! drives the injection cost.
//!
//! This isolates the mechanism behind the hop-interval sensitivity
//! (EXPERIMENTS.md, experiment 1 discussion): the attacker transmits at
//! `anchor + interval − w_attacker`; its timing error must stay inside the
//! margin `w_slave − w_attacker`, which is only a few µs at small hop
//! intervals. Better timestamps ⇒ cheaper attacks.

use bench::{print_series_to, run_point, Cli, TrialConfig};

fn main() {
    let cli = Cli::parse(25);
    let base = cli.seed_base(13_000);
    let mut rows = Vec::new();
    for noise_us in [0.5f64, 2.0, 4.0, 8.0, 16.0] {
        let mut cfg = TrialConfig::new(base + (noise_us * 10.0) as u64);
        cfg.rig.hop_interval = 25; // the tightest margin of experiment 1
        cfg.rig.attacker_anchor_noise_us = Some(noise_us);
        rows.push(run_point(
            &cli,
            "ablation_sync_noise",
            "noise_us",
            noise_us,
            &cfg,
        ));
        eprintln!("anchor noise {noise_us} µs: done");
    }
    print_series_to(
        "ablation_sync_noise",
        "Ablation — attacker anchor-timestamp noise (hop interval 25)",
        &rows,
        cli.json.as_deref(),
    );
}
