//! Figure 9, experiment 1: injection attempts vs Hop Interval (paper §VII-A).
//!
//! 25 injection trials per hop interval in {25, 50, 75, 100, 125, 150};
//! geometry: 2 m equilateral triangle; injected frame: the 22-byte bulb
//! Write Request.

use bench::{print_series, run_trials_parallel, SeriesReport, TrialConfig};

fn main() {
    let trials = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25u64);
    let mut rows = Vec::new();
    for hop_interval in [25u16, 50, 75, 100, 125, 150] {
        let mut cfg = TrialConfig::new(1_000 + u64::from(hop_interval));
        cfg.rig.hop_interval = hop_interval;
        let outcomes = run_trials_parallel(&cfg, trials);
        rows.push(SeriesReport::from_outcomes(
            "hop_interval",
            f64::from(hop_interval),
            &outcomes,
        ));
        eprintln!("hop interval {hop_interval}: done");
    }
    print_series(
        "exp1_hop_interval",
        "Experiment 1 — Hop Interval (paper Fig. 9, panel 1)",
        &rows,
    );
}
