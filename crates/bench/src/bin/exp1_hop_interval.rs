//! Figure 9, experiment 1: injection attempts vs Hop Interval (paper §VII-A).
//!
//! 25 injection trials per hop interval in {25, 50, 75, 100, 125, 150};
//! geometry: 2 m equilateral triangle; injected frame: the 22-byte bulb
//! Write Request.

use bench::{print_series_to, run_point, Cli, TrialConfig};

fn main() {
    let cli = Cli::parse(25);
    let base = cli.seed_base(1_000);
    let mut rows = Vec::new();
    for hop_interval in [25u16, 50, 75, 100, 125, 150] {
        let mut cfg = TrialConfig::new(base + u64::from(hop_interval));
        cfg.rig.hop_interval = hop_interval;
        rows.push(run_point(
            &cli,
            "exp1_hop_interval",
            "hop_interval",
            f64::from(hop_interval),
            &cfg,
        ));
        eprintln!("hop interval {hop_interval}: done");
    }
    print_series_to(
        "exp1_hop_interval",
        "Experiment 1 — Hop Interval (paper Fig. 9, panel 1)",
        &rows,
        cli.json.as_deref(),
    );
}
