//! Fault ablation: attacker cost under deterministic channel impairments.
//!
//! The paper's experiments run on a clean channel; a real 2.4 GHz band is
//! not clean. This sweep prices the injection attack against the two
//! dominant impairments a deployment would see — WiFi-coexistence style
//! interference bursts across the data channels, and flat per-frame
//! loss/corruption — using the medium's deterministic [`FaultPlan`] layer,
//! so every point is exactly reproducible from its seed.
//!
//! Two series share one artefact:
//!
//! * `burst_duty` — every data channel is jammed for the given fraction of
//!   each 100 ms period (advertising channels stay clean, so the attacker
//!   can still synchronise and the sweep isolates the attack phase);
//! * `loss_prob` — every data-channel frame is lost with the given
//!   probability (and the survivors corrupted with half of it), degrading
//!   both the legitimate connection and the attacker's anchor tracking.
//!
//! The zero row of each series runs with **no plan installed** and is the
//! control: it must match an unimpaired run of the same seeds exactly.
//! Trials use a tightened resynchronisation policy so hopeless runs are
//! abandoned by the attacker's bounded retry loop instead of idling out
//! the whole simulation budget.

use bench::{print_series, run_point, Cli, SeriesReport, TrialConfig};
use injectable::ResyncPolicy;
use simkit::{Duration, FaultPlan, FrameLossRule, Instant, InterferenceBurst};

/// Impairments cover the sync phase (≤ 30 s) plus the attack budget.
const FAULT_SPAN_US: u64 = 95_000_000;

/// A resync policy that gives up after ≈45 s of fruitless scanning instead
/// of the default's "outlast any healthy run" dormancy.
fn tight_resync() -> ResyncPolicy {
    ResyncPolicy {
        campaign_hops: 900,
        backoff_base: Duration::from_millis(250),
        backoff_cap: Duration::from_secs(2),
        max_retries: 4,
    }
}

fn base_cfg(seed: u64) -> TrialConfig {
    let mut cfg = TrialConfig::new(seed);
    cfg.sim_budget = Duration::from_secs(60);
    cfg.rig.resync = Some(tight_resync());
    cfg
}

/// Jams all 37 data channels for `duty` of every 100 ms period, at a power
/// comparable to the legitimate signal at the paper's 2 m geometry.
fn burst_plan(duty: f64) -> FaultPlan {
    let mut plan = FaultPlan::seeded(0xB0057);
    for channel in 0..37u8 {
        plan = plan.with_burst(InterferenceBurst::duty_cycle(
            channel,
            Instant::ZERO,
            Duration::from_micros(FAULT_SPAN_US),
            Duration::from_millis(100),
            duty,
            -42.0,
        ));
    }
    plan
}

/// Loses every data-channel frame with probability `p` (and corrupts the
/// survivors with `p/2`). Advertising stays clean for the same reason the
/// bursts leave it alone: a lost `CONNECT_REQ` fails the *sync* phase,
/// which would swamp the attack-phase signal this sweep is after.
fn loss_plan(p: f64) -> FaultPlan {
    let mut plan = FaultPlan::seeded(0x1055);
    for channel in 0..37u8 {
        plan = plan.with_loss(FrameLossRule {
            from: Instant::ZERO,
            until: Instant::from_micros(FAULT_SPAN_US),
            channel: Some(channel),
            loss_prob: p,
            corrupt_prob: p * 0.5,
        });
    }
    plan
}

fn sweep(
    cli: &Cli,
    parameter: &str,
    levels: &[f64],
    seed_base: u64,
    plan_for: impl Fn(f64) -> FaultPlan,
) -> Vec<SeriesReport> {
    let mut rows = Vec::new();
    for (i, &level) in levels.iter().enumerate() {
        let mut cfg = base_cfg(seed_base + i as u64);
        if level > 0.0 {
            cfg.rig.faults = Some(plan_for(level));
        }
        rows.push(run_point(cli, "ablation_faults", parameter, level, &cfg));
        eprintln!("{parameter} {level}: done");
    }
    rows
}

fn main() {
    let cli = Cli::parse(25);
    let base = cli.seed_base(11_000);
    let burst_rows = sweep(
        &cli,
        "burst_duty",
        &[0.0, 0.2, 0.4, 0.6, 0.8],
        base,
        burst_plan,
    );
    let loss_rows = sweep(
        &cli,
        "loss_prob",
        &[0.0, 0.2, 0.35, 0.5, 0.6],
        base + 100,
        loss_plan,
    );
    print_series(
        "ablation_faults_bursts",
        "Fault ablation — data-channel interference bursts",
        &burst_rows,
    );
    print_series(
        "ablation_faults_loss",
        "Fault ablation — flat frame loss/corruption",
        &loss_rows,
    );
    println!("Reading: the zero rows are the unimpaired controls; rising burst");
    println!("duty or loss probability costs the attacker more attempts and, at");
    println!("the top of the loss sweep, the success rate itself. Attempt means");
    println!("are computed over successful trials only, so heavy loss can show a");
    println!("local dip: it kills the legitimate connection faster, and trials");
    println!("that still succeed do so cheaply against the freshly re-synced");
    println!("replacement connection.");
    if let Some(path) = cli.json.as_deref() {
        let mut combined = burst_rows;
        combined.extend(loss_rows);
        match bench::report::write_json_to(path, &combined) {
            Ok(()) => println!("[artefact] {}", path.display()),
            Err(err) => eprintln!(
                "warning: could not write JSON artefact to {}: {err}",
                path.display()
            ),
        }
    }
}
