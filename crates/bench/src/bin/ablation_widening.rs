//! Ablation of the paper's first countermeasure (§VIII): shrinking the
//! Slave's receive-window widening.
//!
//! Paper: *"by reducing the duration of the widening windows the
//! possibility for an attacker to inject a frame at the right time will be
//! mechanically reduced … the rate of successful injection will decrease
//! due to the collision with a legitimate frame. However … such an approach
//! … could have side effects on the reliability and stability of the
//! communications."*
//!
//! We sweep the widening scale and report both sides of that trade-off:
//! the attacker's cost (attempts to first success, success rate within the
//! budget) and the victim's health (connection drops during the campaign).

use bench::rig::{ExperimentRig, RigConfig};
use bench::stats::Summary;
use injectable::Mission;
use simkit::Duration;

struct Row {
    scale: f64,
    succeeded: usize,
    trials: usize,
    attempts: Option<Summary>,
    victim_drops: u32,
}

fn run_point(scale: f64, trials: u64) -> Row {
    let mut attempts = Vec::new();
    let mut victim_drops = 0u32;
    for i in 0..trials {
        let cfg = RigConfig {
            widening_scale: scale,
            ..RigConfig::default()
        };
        let seed = 9_000 + i * 7 + (scale * 1000.0) as u64;
        let mut rig = ExperimentRig::new(seed, &cfg);
        if !rig.wait_synchronised(Duration::from_secs(30)) {
            continue;
        }
        rig.attacker.borrow_mut().arm(Mission::InjectRaw {
            llid: ble_link::Llid::StartOrComplete,
            payload: bench::trial::canonical_write_payload(),
            wanted_successes: 1,
        });
        let deadline = rig.sim.now() + Duration::from_secs(60);
        while rig.sim.now() < deadline {
            rig.sim.run_for(Duration::from_millis(200));
            if rig.attacker.borrow().stats().successes() >= 1 {
                break;
            }
        }
        if let Some(a) = rig.attacker.borrow().stats().attempts_to_first_success() {
            attempts.push(a);
        }
        victim_drops += rig.bulb.borrow().disconnections as u32;
    }
    Row {
        scale,
        succeeded: attempts.len(),
        trials: trials as usize,
        attempts: (!attempts.is_empty()).then(|| Summary::of(&attempts)),
        victim_drops,
    }
}

fn main() {
    let trials = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25u64);
    println!();
    println!("=== Ablation — reduced window widening (paper §VIII, countermeasure 1) ===");
    println!();
    println!(
        "{:>6} | {:>8} | {:>6} {:>6} {:>6} | {:>12}",
        "scale", "success", "median", "mean", "max", "victim drops"
    );
    println!("{}", "-".repeat(62));
    for scale in [1.0f64, 0.75, 0.5, 0.25, 0.1] {
        let row = run_point(scale, trials);
        match &row.attempts {
            Some(s) => println!(
                "{:>6} | {:>4}/{:<3} | {:>6.1} {:>6.2} {:>6.0} | {:>12}",
                row.scale, row.succeeded, row.trials, s.median, s.mean, s.max, row.victim_drops
            ),
            None => println!(
                "{:>6} | {:>4}/{:<3} | {:>6} {:>6} {:>6} | {:>12}",
                row.scale, 0, row.trials, "-", "-", "-", row.victim_drops
            ),
        }
    }
    println!();
    println!("Reading: smaller widening ⇒ the injection needs more attempts (or");
    println!("fails outright), while victim connection drops rise — the paper's");
    println!("predicted reliability cost of the countermeasure.");
}
