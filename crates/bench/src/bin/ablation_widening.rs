//! Ablation of the paper's first countermeasure (§VIII): shrinking the
//! Slave's receive-window widening.
//!
//! Paper: *"by reducing the duration of the widening windows the
//! possibility for an attacker to inject a frame at the right time will be
//! mechanically reduced … the rate of successful injection will decrease
//! due to the collision with a legitimate frame. However … such an approach
//! … could have side effects on the reliability and stability of the
//! communications."*
//!
//! We sweep the widening scale and report both sides of that trade-off:
//! the attacker's cost (attempts to first success, success rate within the
//! budget) and the victim's health (connection drops during the campaign).

use bench::rig::{ExperimentRig, RigConfig};
use bench::stats::Summary;
use bench::{Cli, SeriesReport, TrialOutcome};
use injectable::Mission;
use simkit::Duration;

struct Row {
    scale: f64,
    succeeded: usize,
    trials: usize,
    attempts: Option<Summary>,
    victim_drops: u32,
    outcomes: Vec<TrialOutcome>,
}

fn run_point(scale: f64, trials: u64, base: u64) -> Row {
    let mut attempts = Vec::new();
    let mut victim_drops = 0u32;
    let mut outcomes = Vec::new();
    // Built once per point: every trial arms the same 12-byte write, and
    // the attacker pre-forges it at arm time, so the ATT/L2CAP encoding
    // work is paid once instead of per trial.
    let payload = bench::trial::canonical_write_payload();
    for i in 0..trials {
        let cfg = RigConfig {
            widening_scale: scale,
            ..RigConfig::default()
        };
        let seed = base + i * 7 + (scale * 1000.0) as u64;
        let mut rig = ExperimentRig::new(seed, &cfg);
        if !rig.wait_synchronised(Duration::from_secs(30)) {
            continue;
        }
        rig.attacker_mut().arm(Mission::InjectRaw {
            llid: ble_link::Llid::StartOrComplete,
            payload: payload.clone(),
            wanted_successes: 1,
        });
        let deadline = rig.scenario.now() + Duration::from_secs(60);
        while rig.scenario.now() < deadline {
            rig.scenario.run_for(Duration::from_millis(200));
            if rig.attacker().stats().successes() >= 1 {
                break;
            }
        }
        let first_success = rig.attacker().stats().attempts_to_first_success();
        if let Some(a) = first_success {
            attempts.push(a);
        }
        victim_drops += rig.bulb().disconnections as u32;
        outcomes.push(TrialOutcome {
            attempts: first_success,
            sim_seconds: rig.scenario.now().as_micros_f64() / 1e6,
            effect_observed: rig.bulb().app.pings > 0,
            metrics: None,
            telemetry_downgraded: false,
        });
    }
    Row {
        scale,
        succeeded: attempts.len(),
        trials: trials as usize,
        attempts: (!attempts.is_empty()).then(|| Summary::of(&attempts)),
        victim_drops,
        outcomes,
    }
}

fn main() {
    let cli = Cli::parse(25);
    let trials = cli.trials;
    let base = cli.seed_base(9_000);
    println!();
    println!("=== Ablation — reduced window widening (paper §VIII, countermeasure 1) ===");
    println!();
    println!(
        "{:>6} | {:>8} | {:>6} {:>6} {:>6} | {:>12}",
        "scale", "success", "median", "mean", "max", "victim drops"
    );
    println!("{}", "-".repeat(62));
    let mut series = Vec::new();
    for scale in [1.0f64, 0.75, 0.5, 0.25, 0.1] {
        let row_start = bench::wallclock::Stopwatch::start();
        let row = run_point(scale, trials, base);
        series.push(
            SeriesReport::from_outcomes("widening_scale", scale, &row.outcomes)
                .with_throughput(row_start.elapsed_s()),
        );
        match &row.attempts {
            Some(s) => println!(
                "{:>6} | {:>4}/{:<3} | {:>6.1} {:>6.2} {:>6.0} | {:>12}",
                row.scale, row.succeeded, row.trials, s.median, s.mean, s.max, row.victim_drops
            ),
            None => println!(
                "{:>6} | {:>4}/{:<3} | {:>6} {:>6} {:>6} | {:>12}",
                row.scale, 0, row.trials, "-", "-", "-", row.victim_drops
            ),
        }
    }
    println!();
    println!("Reading: smaller widening ⇒ the injection needs more attempts (or");
    println!("fails outright), while victim connection drops rise — the paper's");
    println!("predicted reliability cost of the countermeasure.");
    if let Some(path) = cli.json.as_deref() {
        match bench::report::write_json_to(path, &series) {
            Ok(()) => println!("[artefact] {}", path.display()),
            Err(err) => eprintln!(
                "warning: could not write JSON artefact to {}: {err}",
                path.display()
            ),
        }
    }
}
