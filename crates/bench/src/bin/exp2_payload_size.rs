//! Figure 9, experiment 2: injection attempts vs payload size (paper §VII-B).
//!
//! Hop interval fixed at 75; Link-Layer payload sizes {4, 9, 14, 16} bytes,
//! 25 trials each.

use bench::trial::raw_payload_of_len;
use bench::{print_series, run_trials_parallel, SeriesReport, TrialConfig};

fn main() {
    let trials = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25u64);
    let mut rows = Vec::new();
    for size in [4usize, 9, 14, 16] {
        let mut cfg = TrialConfig::new(2_000 + size as u64);
        cfg.rig.hop_interval = 75;
        cfg.payload = raw_payload_of_len(size);
        let outcomes = run_trials_parallel(&cfg, trials);
        rows.push(SeriesReport::from_outcomes(
            "payload_bytes",
            size as f64,
            &outcomes,
        ));
        eprintln!("payload {size} B: done");
    }
    print_series(
        "exp2_payload_size",
        "Experiment 2 — Payload size (paper Fig. 9, panel 2)",
        &rows,
    );
}
