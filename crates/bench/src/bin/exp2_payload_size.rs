//! Figure 9, experiment 2: injection attempts vs payload size (paper §VII-B).
//!
//! Hop interval fixed at 75; Link-Layer payload sizes {4, 9, 14, 16} bytes,
//! 25 trials each.

use bench::trial::raw_payload_of_len;
use bench::{print_series_to, run_point, Cli, TrialConfig};

fn main() {
    let cli = Cli::parse(25);
    let base = cli.seed_base(2_000);
    let mut rows = Vec::new();
    for size in [4usize, 9, 14, 16] {
        let mut cfg = TrialConfig::new(base + size as u64);
        cfg.rig.hop_interval = 75;
        cfg.payload = raw_payload_of_len(size);
        rows.push(run_point(
            &cli,
            "exp2_payload_size",
            "payload_bytes",
            size as f64,
            &cfg,
        ));
        eprintln!("payload {size} B: done");
    }
    print_series_to(
        "exp2_payload_size",
        "Experiment 2 — Payload size (paper Fig. 9, panel 2)",
        &rows,
        cli.json.as_deref(),
    );
}
