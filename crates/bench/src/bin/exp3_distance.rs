//! Figure 9, experiment 3: injection attempts vs attacker distance
//! (paper §VII-C). Bulb and phone 2 m apart (hop interval 36, the paper's
//! smartphone default); attacker from 1 m to 10 m.

use bench::{print_series_to, run_point, Cli, TrialConfig};

fn main() {
    let cli = Cli::parse(25);
    let base = cli.seed_base(3_000);
    let mut rows = Vec::new();
    for distance in [1.0f64, 2.0, 4.0, 6.0, 8.0, 10.0] {
        let mut cfg = TrialConfig::new(base + distance as u64);
        cfg.rig.hop_interval = 36;
        cfg.rig.attacker_distance = distance;
        rows.push(run_point(
            &cli,
            "exp3_distance",
            "distance_m",
            distance,
            &cfg,
        ));
        eprintln!("distance {distance} m: done");
    }
    print_series_to(
        "exp3_distance",
        "Experiment 3 — Attacker distance (paper Fig. 9, panel 3)",
        &rows,
        cli.json.as_deref(),
    );
}
