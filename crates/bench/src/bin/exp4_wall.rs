//! Figure 9, wall experiment: injection attempts with the attacker behind
//! a wall at 2–8 m (paper §VII-C, final paragraph).

use bench::{print_series_to, run_point, Cli, TrialConfig};

fn main() {
    let cli = Cli::parse(25);
    let base = cli.seed_base(4_000);
    let mut rows = Vec::new();
    for distance in [2.0f64, 4.0, 6.0, 8.0] {
        let mut cfg = TrialConfig::new(base + distance as u64);
        cfg.rig.hop_interval = 36;
        cfg.rig.attacker_distance = distance;
        cfg.rig.wall_db = Some(8.0);
        cfg.sim_budget = simkit::Duration::from_secs(240);
        rows.push(run_point(&cli, "exp4_wall", "distance_m", distance, &cfg));
        eprintln!("wall distance {distance} m: done");
    }
    print_series_to(
        "exp4_wall",
        "Experiment 4 — Attacker behind a wall (paper Fig. 9, panel 4)",
        &rows,
        cli.json.as_deref(),
    );
}
