//! Detection experiment for the paper's §VIII monitoring countermeasure:
//! a passive Link-Layer IDS watching the victim connection.
//!
//! Measures, over many independent runs: false-positive rate on clean
//! traffic, and detection rate (+ alerts per attempt) under an InjectaBLE
//! campaign.

use bench::rig::{ExperimentRig, RigConfig};
use injectable::{DetectorConfig, InjectionDetector, Mission};
use simkit::Duration;

struct RunResult {
    events: u32,
    alerts: usize,
    attempts: u32,
}

fn run(seed: u64, attack: bool) -> RunResult {
    let mut rig = ExperimentRig::new(seed, &RigConfig::default());
    let slave = rig.bulb().ll.address();
    let detector = InjectionDetector::new(DetectorConfig::default()).for_slave(slave);
    let id = rig.scenario.world.add_node(
        ble_phy::NodeConfig::new("ids", ble_phy::Position::new(1.0, 1.0)),
        detector,
    );
    rig.scenario.world.start(id);
    rig.wait_synchronised(Duration::from_secs(30));
    rig.scenario.run_for(Duration::from_secs(2));
    if attack {
        rig.attacker_mut().set_inject_gap(2);
        rig.attacker_mut().arm(Mission::InjectRaw {
            llid: ble_link::Llid::StartOrComplete,
            payload: bench::trial::canonical_write_payload(),
            wanted_successes: 5,
        });
    }
    rig.scenario.run_for(Duration::from_secs(30));
    let (events, alerts) = {
        let d = rig
            .scenario
            .world
            .node::<InjectionDetector>(id)
            .expect("ids node");
        (d.events_observed(), d.alerts().len())
    };
    let attempts = rig.attacker().stats().attempts_total;
    RunResult {
        events,
        alerts,
        attempts,
    }
}

fn main() {
    let runs = bench::Cli::parse(15).trials;
    println!();
    println!("=== IDS detection (paper §VIII, countermeasure 3) ===");
    println!();
    for (label, attack) in [("clean traffic", false), ("under attack", true)] {
        let mut detected = 0u64;
        let mut total_alerts = 0usize;
        let mut total_events = 0u64;
        let mut total_attempts = 0u64;
        for i in 0..runs {
            let r = run(11_000 + i, attack);
            detected += u64::from(r.alerts > 0);
            total_alerts += r.alerts;
            total_events += u64::from(r.events);
            total_attempts += u64::from(r.attempts);
        }
        println!(
            "{label:<14}: runs flagged {detected}/{runs}   alerts {total_alerts:>4}   events observed {total_events:>6}   injection attempts {total_attempts:>4}"
        );
    }
    println!();
    println!("Expected shape: 0 runs flagged on clean traffic (no false positives),");
    println!("every attacked run flagged, with multiple alerts per campaign.");
}
