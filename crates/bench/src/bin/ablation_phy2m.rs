//! BLE 5 extension: the injection race on the LE 2M PHY.
//!
//! At 2 Mbit/s every frame's airtime halves, so the injected frame exposes
//! fewer microseconds to the colliding Master frame. The paper evaluates
//! LE 1M only; this ablation quantifies how the faster PHY changes the
//! attacker's cost on otherwise identical scenes.

use bench::{print_series_to, run_point, Cli, TrialConfig};
use ble_phy::PhyMode;

fn main() {
    let cli = Cli::parse(25);
    let base = cli.seed_base(12_000);
    let mut rows = Vec::new();
    for (label, phy) in [(1.0, PhyMode::Le1M), (2.0, PhyMode::Le2M)] {
        let mut cfg = TrialConfig::new(base + label as u64);
        cfg.rig.phy = phy;
        // A distance where collisions matter (4 m).
        cfg.rig.attacker_distance = 4.0;
        rows.push(run_point(&cli, "ablation_phy2m", "phy_mbit", label, &cfg));
        eprintln!("LE {label}M: done");
    }
    print_series_to(
        "ablation_phy2m",
        "Ablation — LE 1M vs LE 2M PHY (attacker at 4 m)",
        &rows,
        cli.json.as_deref(),
    );
}
