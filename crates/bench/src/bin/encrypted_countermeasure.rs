//! The §VIII countermeasure experiment: what injection achieves against an
//! AES-CCM encrypted connection.
//!
//! Paper claims being checked:
//!   * enabling the native encryption prevents forged frames from being
//!     accepted (no feature triggered);
//!   * "the vulnerability itself remains, with at least an impact on
//!     availability" — the injected plaintext fails MIC validation and the
//!     Slave tears the connection down (DoS).

use bench::rig::{ExperimentRig, RigConfig};
use ble_devices::bulb_payloads;
use ble_host::att::AttPdu;
use injectable::Mission;
use simkit::{Duration, SimRng};

struct Outcome {
    seed: u64,
    feature_triggered: bool,
    dos_disconnect: bool,
    attempts: u32,
}

fn run_one(seed: u64) -> Outcome {
    let mut rig = ExperimentRig::new(seed, &RigConfig::default());
    rig.central_mut().pair_on_connect = true;
    // Wait for pairing + encryption.
    let mut encrypted = false;
    for _ in 0..200 {
        rig.scenario.run_for(Duration::from_millis(100));
        if rig.central().host.is_encrypted() && rig.bulb().host.is_encrypted() {
            encrypted = true;
            break;
        }
    }
    assert!(encrypted, "setup: encryption must come up (seed {seed})");
    rig.scenario.run_for(Duration::from_millis(500));

    let att = AttPdu::WriteRequest {
        handle: rig.control_handle,
        value: bulb_payloads::power_on(),
    }
    .to_bytes();
    rig.attacker_mut().arm(Mission::InjectAtt { att });
    let mut dos = false;
    for _ in 0..200 {
        rig.scenario.run_for(Duration::from_millis(200));
        if rig.bulb().last_disconnect_reason == Some(ble_link::ERR_MIC_FAILURE) {
            dos = true;
            break;
        }
    }
    let feature_triggered = rig.bulb().app.on || !rig.bulb().app.command_log.is_empty();
    let attempts = rig.attacker().stats().attempts_total;
    Outcome {
        seed,
        feature_triggered,
        dos_disconnect: dos,
        attempts,
    }
}

fn main() {
    let runs = bench::Cli::parse(10).trials;
    println!();
    println!("=== Encryption countermeasure (paper §IV/§VIII) ===");
    println!("Injecting a plaintext ATT Write into an AES-CCM encrypted connection.");
    println!();
    println!(
        "{:>6} | {:>18} | {:>22} | {:>9}",
        "seed", "feature triggered", "DoS (MIC disconnect)", "attempts"
    );
    println!("{}", "-".repeat(68));
    let mut triggered = 0;
    let mut dos = 0;
    let mut rng = SimRng::seed_from(0xC0DE);
    for _ in 0..runs {
        let seed = 5_000 + rng.below(1_000_000);
        let o = run_one(seed);
        println!(
            "{:>6} | {:>18} | {:>22} | {:>9}",
            o.seed,
            if o.feature_triggered {
                "YES (bad!)"
            } else {
                "no"
            },
            if o.dos_disconnect { "yes" } else { "no" },
            o.attempts
        );
        triggered += u32::from(o.feature_triggered);
        dos += u32::from(o.dos_disconnect);
    }
    println!();
    println!("features triggered: {triggered}/{runs} (paper: 0 — encryption blocks the payload)");
    println!(
        "availability impact: {dos}/{runs} connections torn down by MIC failure (paper: DoS remains possible)"
    );
    if triggered > 0 {
        std::process::exit(1);
    }
}
