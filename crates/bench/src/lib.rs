//! Experiment harness reproducing the InjectaBLE evaluation (paper §VII).
//!
//! Each sensitivity experiment runs many independent *trials*. One trial is
//! the paper's unit of measurement: establish a fresh connection between a
//! victim Peripheral and a Central, synchronise the attacker, inject once
//! per connection event, and count **injection attempts before the first
//! confirmed success** (Figure 9's metric).
//!
//! The binaries in `src/bin/` regenerate each panel of Figure 9 plus the
//! scenario/countermeasure tables; see `DESIGN.md` §4 for the index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod cli;
pub mod report;
pub mod rig;
pub mod stats;
pub mod telemetry;
pub mod trial;
pub mod wallclock;

pub use campaign::{
    run_campaign, run_campaign_with, run_point, CampaignConfig, CampaignRun, SeriesAccumulator,
};
pub use cli::Cli;
pub use report::{print_series, print_series_to, SeriesReport};
pub use rig::ExperimentRig;
pub use stats::Summary;
pub use telemetry::{HistRow, TelemetryMode, TrialMetrics};
pub use trial::{run_trial, run_trials_parallel, TrialConfig, TrialOutcome, TrialSeries};
