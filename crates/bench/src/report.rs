//! Experiment reporting: console tables + JSON artefacts.

use std::io::Write as _;
use std::path::PathBuf;

use serde::Serialize;

use crate::campaign::SeriesAccumulator;
use crate::stats::Summary;
use crate::telemetry::{HistRow, PhaseProfile};
use crate::trial::{TrialOutcome, TrialSeries};

/// One row of an experiment series: a parameter value and its outcome
/// distribution.
#[derive(Debug, Clone, Serialize)]
pub struct SeriesReport {
    /// The swept parameter's name.
    pub parameter: String,
    /// The swept parameter's value for this row.
    pub value: f64,
    /// Successful trials out of total.
    pub succeeded: u64,
    /// Total trials **requested** — panicked trials stay in this
    /// denominator rather than silently shrinking it.
    pub trials: u64,
    /// Attempts-before-success distribution over successful trials. All
    /// zeros (`n == 0`) when no trial succeeded.
    pub attempts: Summary,
    /// Raw attempt counts.
    pub raw: Vec<u32>,
    /// Anchor-prediction-error summary (µs), merged across the row's
    /// trials; absent when telemetry was off or nothing was recorded.
    pub anchor_error_us: Option<HistRow>,
    /// Injection lead-time summary (µs), merged across the row's trials.
    pub lead_time_us: Option<HistRow>,
    /// Mean telemetry events per wall-clock second across the row's trials;
    /// `None` when no trial recorded a rate (telemetry off or no events).
    /// An earlier revision emitted `0.0` for that case, which misread as a
    /// measured rate of zero — and the obvious mean over an empty rate list
    /// is `0/0`, a NaN that is not even valid JSON.
    pub events_per_sec: Option<f64>,
    /// Trials completed per wall-clock second for this row (0 when the
    /// binary did not time the row). Wall-clock, so excluded from
    /// byte-identity comparisons of artefacts.
    pub trials_per_sec: f64,
    /// Peak resident set size (kB) sampled when the row finished; `None`
    /// off Linux. Wall-clock-adjacent: excluded from byte-identity
    /// comparisons.
    pub peak_rss_kb: Option<u64>,
    /// Trials whose injected command observably reached the application
    /// without the attacker's heuristic ever confirming an attempt
    /// ([`TrialOutcome::unconfirmed_effect`]). Previously these were folded
    /// into the plain failures and the signal was lost.
    pub unconfirmed_effects: u64,
    /// Trials that silently downgraded a requested JSONL telemetry sink to
    /// metrics-only because the sink could not be opened.
    pub telemetry_downgrades: u64,
    /// Trials that panicked mid-run (caught, counted, kept in the `trials`
    /// denominator). Previously a panicked trial was simply absent from the
    /// series and every rate computed from it was silently optimistic.
    pub panicked_trials: u64,
    /// Per-phase span attribution merged across the row's trials, in
    /// [`ble_telemetry::SpanKind`] order. Empty when telemetry was off. The
    /// `wall_ns`/`self_wall_ns` fields are wall-clock and excluded from
    /// byte-identity (neutralised by `cargo xtask determinism`); the
    /// sim-time fields are deterministic.
    pub phase_profile: Vec<PhaseProfile>,
    /// Extra sim-deterministic columns (`name`, `value`) an experiment
    /// attaches to the row — e.g. exp6's co-channel collision rate and
    /// mean scheduled-`RxStart` count. Emitted to JSON only when
    /// non-empty, so artefacts of experiments that attach none keep their
    /// historical byte shape.
    pub extras: Vec<(String, f64)>,
}

impl SeriesReport {
    /// Builds a row from trial outcomes. A row where no trial succeeded
    /// gets an empty attempts summary instead of panicking, so a sweep
    /// point at the edge of the attack's envelope still produces a row.
    ///
    /// Implemented as a sequential fold through
    /// [`SeriesAccumulator`] — the same per-trial fold the
    /// streaming campaign runner uses — so the in-memory and campaign
    /// paths produce byte-identical rows by construction.
    pub fn from_outcomes(parameter: &str, value: f64, outcomes: &[TrialOutcome]) -> SeriesReport {
        let mut acc = SeriesAccumulator::new(outcomes.len() as u64);
        for o in outcomes {
            acc.fold(o);
        }
        acc.report(parameter, value)
    }

    /// Builds a row from a [`TrialSeries`]: like [`Self::from_outcomes`]
    /// but with the requested-trial denominator and the panicked-trial
    /// count the series carries.
    pub fn from_series(parameter: &str, value: f64, series: &TrialSeries) -> SeriesReport {
        let mut acc = SeriesAccumulator::new(series.requested);
        for o in &series.outcomes {
            acc.fold(o);
        }
        for _ in 0..series.panicked {
            acc.fold_panicked();
        }
        acc.report(parameter, value)
    }

    /// Attaches one extra sim-deterministic column to the row (builder
    /// style). The value must be a pure function of the simulation — it is
    /// printed to stdout and written to the JSON artefact, both of which
    /// `cargo xtask determinism` holds byte-identical.
    pub fn with_extra(mut self, name: &str, value: f64) -> SeriesReport {
        self.extras.push((name.to_string(), value));
        self
    }

    /// Prices the row: records trials-per-second from the row's wall-clock
    /// duration and samples the process peak RSS. The numbers go to the
    /// JSON artefact and a stderr summary — never to stdout, which stays
    /// byte-identical across equally-seeded runs.
    pub fn with_throughput(mut self, row_wall_s: f64) -> SeriesReport {
        if row_wall_s > 0.0 {
            self.trials_per_sec = self.trials as f64 / row_wall_s;
        }
        self.peak_rss_kb = peak_rss_kb();
        self
    }
}

/// Peak resident set size of this process in kB (`VmHWM` from
/// `/proc/self/status`); `None` off Linux or when unreadable.
pub fn peak_rss_kb() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        status.lines().find_map(|line| {
            line.strip_prefix("VmHWM:")?
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .ok()
        })
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Like [`print_series`], additionally writing the JSON rows to `extra`
/// (the `--json` artefact path of the experiment binaries).
pub fn print_series_to(
    name: &str,
    title: &str,
    rows: &[SeriesReport],
    extra: Option<&std::path::Path>,
) {
    print_series(name, title, rows);
    if let Some(path) = extra {
        match write_json_to(path, rows) {
            Ok(()) => println!("[artefact] {}", path.display()),
            Err(err) => eprintln!(
                "warning: could not write JSON artefact to {}: {err}",
                path.display()
            ),
        }
    }
}

/// Prints a Figure 9-style table and writes the JSON artefact to
/// `target/experiments/<name>.json`.
pub fn print_series(name: &str, title: &str, rows: &[SeriesReport]) {
    println!();
    println!("=== {title} ===");
    println!("(metric: injection attempts before the first confirmed success)");
    println!();
    println!(
        "{:>12} | {:>7} | {:>6} {:>6} {:>6} {:>6} {:>6} | {:>7} | {:>8}",
        rows.first()
            .map(|r| r.parameter.as_str())
            .unwrap_or("value"),
        "success",
        "min",
        "q1",
        "median",
        "q3",
        "max",
        "mean",
        "variance"
    );
    println!("{}", "-".repeat(92));
    for r in rows {
        println!(
            "{:>12} | {:>4}/{:<2} | {:>6.0} {:>6.1} {:>6.1} {:>6.1} {:>6.0} | {:>7.2} | {:>8.2}",
            r.value,
            r.succeeded,
            r.trials,
            r.attempts.min,
            r.attempts.q1,
            r.attempts.median,
            r.attempts.q3,
            r.attempts.max,
            r.attempts.mean,
            r.attempts.variance
        );
    }
    println!();
    // Unconfirmed effects are sim-deterministic, so printing them (only
    // when present) keeps stdout byte-identical across equally-seeded runs.
    for r in rows {
        if r.unconfirmed_effects > 0 {
            println!(
                "[anomaly] {}={}: {} trial(s) reached the application without \
                 a confirmed attempt",
                r.parameter, r.value, r.unconfirmed_effects
            );
        }
    }
    // Panics are a pure function of (seed, config) — deterministic — so
    // the count is stdout-safe and must be loud: these trials failed the
    // harness, not the attack.
    for r in rows {
        if r.panicked_trials > 0 {
            println!(
                "[anomaly] {}={}: {} trial(s) panicked and count as failures \
                 in the {}-trial denominator",
                r.parameter, r.value, r.panicked_trials, r.trials
            );
        }
    }
    // Extra columns are sim-deterministic by contract: stdout-safe.
    for r in rows {
        for (name, value) in &r.extras {
            println!("[metric] {}={}: {name}={value:.4}", r.parameter, r.value);
        }
    }
    // Telemetry downgrades depend on the filesystem, not the simulation:
    // report them on stderr only.
    for r in rows {
        if r.telemetry_downgrades > 0 {
            eprintln!(
                "[telemetry] {}={}: {} trial(s) silently downgraded a JSONL \
                 sink to metrics-only",
                r.parameter, r.value, r.telemetry_downgrades
            );
        }
    }
    // Throughput pricing goes to stderr: stdout stays byte-identical across
    // equally-seeded runs regardless of machine speed.
    for r in rows {
        if r.trials_per_sec > 0.0 {
            eprintln!(
                "[throughput] {}={} {:.0} trials/sec{}",
                r.parameter,
                r.value,
                r.trials_per_sec,
                r.peak_rss_kb
                    .map(|kb| format!(" peak_rss={kb} kB"))
                    .unwrap_or_default()
            );
        }
    }
    if let Err(err) = write_json(name, rows) {
        eprintln!("warning: could not write JSON artefact: {err}");
    }
}

fn write_json(name: &str, rows: &[SeriesReport]) -> std::io::Result<()> {
    let dir = artefact_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    write_json_to(&path, rows)?;
    println!("[artefact] {}", path.display());
    Ok(())
}

/// Writes the JSON rows to an explicit path.
pub fn write_json_to(path: &std::path::Path, rows: &[SeriesReport]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(rows_to_json(rows).as_bytes())
}

/// Workspace-relative artefact directory.
pub fn artefact_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments")
}

/// Minimal JSON encoding (serde-derive model, hand-rolled writer keeps the
/// dependency surface small).
///
/// Artefact bytes are a pure function of the row values: every field is a
/// scalar, `Vec` (seed order) or fixed-shape histogram summary — there is no
/// map-backed field whose insertion order could show through, and the
/// per-trial metrics feeding the rows come out of the name-sorted
/// (`BTreeMap`) telemetry registry. `cargo xtask determinism` holds the
/// binaries to this byte-for-byte (modulo the wall-clock fields above).
pub fn rows_to_json(rows: &[SeriesReport]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"parameter\":\"{}\",\"value\":{},\"succeeded\":{},\"trials\":{},\
             \"min\":{},\"q1\":{},\"median\":{},\"q3\":{},\"max\":{},\"mean\":{:.3},\
             \"variance\":{:.3},\"raw\":{:?},\"anchor_error_us\":{},\
             \"lead_time_us\":{},\"events_per_sec\":{},\
             \"trials_per_sec\":{:.1},\"peak_rss_kb\":{}",
            r.parameter,
            r.value,
            r.succeeded,
            r.trials,
            r.attempts.min,
            r.attempts.q1,
            r.attempts.median,
            r.attempts.q3,
            r.attempts.max,
            r.attempts.mean,
            r.attempts.variance,
            r.raw,
            hist_json(r.anchor_error_us.as_ref()),
            hist_json(r.lead_time_us.as_ref()),
            // `null`, not `0.0`, when no trial recorded a rate: a zero
            // reads as a measurement, and the old empty-row mean was a
            // 0/0 NaN away from producing invalid JSON.
            r.events_per_sec
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "null".to_string()),
            r.trials_per_sec,
            r.peak_rss_kb
                .map(|kb| kb.to_string())
                .unwrap_or_else(|| "null".to_string()),
        ));
        // Anomaly counters are emitted only when non-zero, so the artefacts
        // of healthy runs stay byte-identical to those of earlier builds.
        if r.unconfirmed_effects > 0 {
            out.push_str(&format!(
                ",\"unconfirmed_effects\":{}",
                r.unconfirmed_effects
            ));
        }
        if r.telemetry_downgrades > 0 {
            out.push_str(&format!(
                ",\"telemetry_downgrades\":{}",
                r.telemetry_downgrades
            ));
        }
        if r.panicked_trials > 0 {
            out.push_str(&format!(",\"panicked_trials\":{}", r.panicked_trials));
        }
        // Extra columns, like the anomaly counters, appear only when an
        // experiment attached them — absent keys, not zeros.
        for (name, value) in &r.extras {
            out.push_str(&format!(",\"{name}\":{value:.4}"));
        }
        out.push_str(&format!(
            ",\"phase_profile\":{}",
            phase_profile_json(&r.phase_profile)
        ));
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

/// Encodes an optional histogram summary as a JSON object or `null`.
fn hist_json(row: Option<&HistRow>) -> String {
    match row {
        Some(h) => format!(
            "{{\"count\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p95\":{},\
             \"p99\":{},\"min\":{:.3},\"max\":{:.3}}}",
            h.count, h.mean, h.p50, h.p90, h.p95, h.p99, h.min, h.max
        ),
        None => "null".to_string(),
    }
}

/// Encodes the per-phase span profile as a JSON array (empty when spans
/// never closed — the key is still emitted so artefact shape is stable).
fn phase_profile_json(rows: &[PhaseProfile]) -> String {
    let mut out = String::from("[");
    for (i, p) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"phase\":\"{}\",\"count\":{},\"sim_ns\":{},\"self_sim_ns\":{},\
             \"wall_ns\":{},\"self_wall_ns\":{}}}",
            p.phase, p.count, p.sim_ns, p.self_sim_ns, p.wall_ns, p.self_wall_ns
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trial::TrialOutcome;

    fn outcomes(attempts: &[u32]) -> Vec<TrialOutcome> {
        attempts
            .iter()
            .map(|&a| TrialOutcome {
                attempts: Some(a),
                sim_seconds: 1.0,
                effect_observed: true,
                metrics: None,
                telemetry_downgraded: false,
            })
            .collect()
    }

    #[test]
    fn report_from_outcomes() {
        let r = SeriesReport::from_outcomes("hop", 25.0, &outcomes(&[1, 2, 3]));
        assert_eq!(r.succeeded, 3);
        assert_eq!(r.attempts.median, 2.0);
    }

    #[test]
    fn failed_trials_excluded_from_distribution() {
        let mut o = outcomes(&[4, 6]);
        o.push(TrialOutcome {
            attempts: None,
            sim_seconds: 60.0,
            effect_observed: false,
            metrics: None,
            telemetry_downgraded: false,
        });
        let r = SeriesReport::from_outcomes("d", 10.0, &o);
        assert_eq!(r.succeeded, 2);
        assert_eq!(r.trials, 3);
    }

    #[test]
    fn zero_success_row_does_not_panic() {
        let o = vec![TrialOutcome {
            attempts: None,
            sim_seconds: 120.0,
            effect_observed: false,
            metrics: None,
            telemetry_downgraded: false,
        }];
        let r = SeriesReport::from_outcomes("d", 12.0, &o);
        assert_eq!(r.succeeded, 0);
        assert_eq!(r.trials, 1);
        assert_eq!(r.attempts.n, 0);
        assert_eq!(r.attempts.mean, 0.0);
        let json = rows_to_json(&[r]);
        assert!(json.contains("\"succeeded\":0"));
    }

    #[test]
    fn unconfirmed_effects_are_counted_not_swallowed() {
        // Regression: an effect that reached the application without a
        // confirmed attempt used to be indistinguishable from a plain
        // failure in the report.
        let mut o = outcomes(&[2]);
        o.push(TrialOutcome {
            attempts: None,
            sim_seconds: 120.0,
            effect_observed: true,
            metrics: None,
            telemetry_downgraded: true,
        });
        let r = SeriesReport::from_outcomes("hop", 36.0, &o);
        assert_eq!(r.succeeded, 1);
        assert_eq!(r.unconfirmed_effects, 1);
        assert_eq!(r.telemetry_downgrades, 1);
        let json = rows_to_json(&[r]);
        assert!(json.contains("\"unconfirmed_effects\":1"));
        assert!(json.contains("\"telemetry_downgrades\":1"));
        // Healthy rows keep the historical JSON shape: the counters are
        // absent, not zero.
        let clean = SeriesReport::from_outcomes("hop", 36.0, &outcomes(&[2]));
        assert_eq!(clean.unconfirmed_effects, 0);
        let json = rows_to_json(&[clean]);
        assert!(!json.contains("unconfirmed_effects"));
        assert!(!json.contains("telemetry_downgrades"));
    }

    #[test]
    fn events_rate_serialises_as_number_or_null_never_nan() {
        // With rates: a plain number.
        use crate::telemetry::TrialMetrics;
        let mut with = outcomes(&[1]);
        with[0].metrics = Some(TrialMetrics {
            events_per_sec: 40.0,
            ..TrialMetrics::default()
        });
        let json = rows_to_json(&[SeriesReport::from_outcomes("x", 1.0, &with)]);
        assert!(json.contains("\"events_per_sec\":40.0"));
        // Without rates (metrics present but zero events, or no metrics at
        // all): null, and never the string "NaN".
        let mut without = outcomes(&[1]);
        without[0].metrics = Some(TrialMetrics::default());
        let r = SeriesReport::from_outcomes("x", 1.0, &without);
        assert_eq!(r.events_per_sec, None);
        let json = rows_to_json(&[r]);
        assert!(json.contains("\"events_per_sec\":null"));
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn panicked_trials_surface_in_report_and_json() {
        use crate::trial::TrialSeries;
        let series = TrialSeries {
            outcomes: outcomes(&[2, 4]),
            requested: 5,
            panicked: 3,
        };
        let r = SeriesReport::from_series("hop", 36.0, &series);
        assert_eq!(r.trials, 5, "denominator is requested, not returned");
        assert_eq!(r.succeeded, 2);
        assert_eq!(r.panicked_trials, 3);
        let json = rows_to_json(&[r]);
        assert!(json.contains("\"trials\":5"));
        assert!(json.contains("\"panicked_trials\":3"));
        // Healthy rows keep the historical JSON shape: the key is absent.
        let clean = SeriesReport::from_outcomes("hop", 36.0, &outcomes(&[2]));
        assert_eq!(clean.panicked_trials, 0);
        assert!(!rows_to_json(&[clean]).contains("panicked_trials"));
    }

    #[test]
    fn extras_appear_only_when_attached() {
        let r = SeriesReport::from_outcomes("density", 32.0, &outcomes(&[2]))
            .with_extra("co_channel_collision_rate", 0.125)
            .with_extra("mean_scheduled_rx_starts", 3.4);
        let json = rows_to_json(&[r]);
        assert!(json.contains("\"co_channel_collision_rate\":0.1250"));
        assert!(json.contains("\"mean_scheduled_rx_starts\":3.4000"));
        // Rows without extras keep the historical JSON shape.
        let bare = SeriesReport::from_outcomes("density", 32.0, &outcomes(&[2]));
        assert!(bare.extras.is_empty());
        let json = rows_to_json(&[bare]);
        assert!(!json.contains("co_channel_collision_rate"));
    }

    #[test]
    fn throughput_pricing_lands_in_json() {
        let r = SeriesReport::from_outcomes("x", 1.0, &outcomes(&[1, 2])).with_throughput(0.5);
        assert_eq!(r.trials_per_sec, 4.0);
        let json = rows_to_json(&[r]);
        assert!(json.contains("\"trials_per_sec\":4.0"));
        assert!(json.contains("\"peak_rss_kb\":"));
        // Un-priced rows keep the neutral values.
        let bare = SeriesReport::from_outcomes("x", 1.0, &outcomes(&[1]));
        assert_eq!(bare.trials_per_sec, 0.0);
        assert!(bare.peak_rss_kb.is_none());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_readable_on_linux() {
        let kb = peak_rss_kb().expect("VmHWM in /proc/self/status");
        assert!(kb > 0);
    }

    #[test]
    fn json_bytes_do_not_depend_on_metric_insertion_order() {
        // Determinism guarantee: two rows built from outcomes whose metric
        // registries were populated in different orders serialise to the
        // same bytes — the registry is name-sorted and the row itself has
        // no map-backed field.
        use crate::telemetry::TrialMetrics;
        use ble_telemetry::MetricsRegistry;
        let build = |reverse: bool| {
            let mut reg = MetricsRegistry::new();
            if reverse {
                reg.observe_us("attack.lead_us", 36.0);
                reg.observe_us("attack.anchor_error_us", 4.0);
                reg.add("telemetry.events", 10);
            } else {
                reg.add("telemetry.events", 10);
                reg.observe_us("attack.anchor_error_us", 4.0);
                reg.observe_us("attack.lead_us", 36.0);
            }
            let mut o = outcomes(&[2, 5]);
            for out in o.iter_mut() {
                out.metrics = Some(TrialMetrics::from_registry(&reg, 1.0, 1.0));
            }
            rows_to_json(&[SeriesReport::from_outcomes("hop", 36.0, &o)])
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn json_is_wellformed_enough() {
        let r = SeriesReport::from_outcomes("x", 1.0, &outcomes(&[1]));
        let json = rows_to_json(&[r]);
        assert!(json.starts_with('['));
        assert!(json.contains("\"median\":1"));
        assert!(json.contains("\"anchor_error_us\":null"));
        // No trial carried a metric block, so there is no events rate to
        // report: the field is null, not a fabricated 0.0 (and never the
        // 0/0 NaN the old empty-row mean risked — NaN is invalid JSON).
        assert!(json.contains("\"events_per_sec\":null"));
        // The phase-profile key is always present so the artefact shape is
        // stable whether or not telemetry ran.
        assert!(json.contains("\"phase_profile\":[]"));
    }

    #[test]
    fn phase_profile_merges_across_trials_into_json() {
        use crate::telemetry::TrialMetrics;
        use ble_telemetry::MetricsRegistry;
        let mut reg = MetricsRegistry::new();
        reg.add("span.trial_sync.count", 1);
        reg.add("span.trial_sync.sim_ns", 2_000_000);
        reg.add("span.trial_sync.self_sim_ns", 2_000_000);
        reg.add("span.trial_sync.wall_ns", 777);
        reg.add("span.trial_sync.self_wall_ns", 777);
        let mut o = outcomes(&[1, 2]);
        for out in o.iter_mut() {
            out.metrics = Some(TrialMetrics::from_registry(&reg, 1.0, 1.0));
        }
        let r = SeriesReport::from_outcomes("hop", 36.0, &o);
        assert_eq!(r.phase_profile.len(), 1);
        assert_eq!(r.phase_profile[0].count, 2);
        assert_eq!(r.phase_profile[0].sim_ns, 4_000_000);
        let json = rows_to_json(&[r]);
        assert!(json.contains(
            "\"phase_profile\":[{\"phase\":\"trial-sync\",\"count\":2,\
             \"sim_ns\":4000000,\"self_sim_ns\":4000000,\"wall_ns\":1554,\
             \"self_wall_ns\":1554}]"
        ));
    }

    #[test]
    fn hist_json_reports_p95() {
        let mut h = ble_telemetry::HistogramUs::default();
        for i in 0..100 {
            h.record(f64::from(i));
        }
        let row = HistRow::from(h.summary());
        let json = hist_json(Some(&row));
        assert!(json.contains("\"p95\":"));
        assert!(row.p95 >= row.p90);
        assert!(row.p95 <= row.p99);
    }

    #[test]
    fn metric_block_merges_into_row() {
        use crate::telemetry::TrialMetrics;
        use ble_telemetry::HistogramUs;
        let mut o = outcomes(&[3, 5]);
        for (i, out) in o.iter_mut().enumerate() {
            let mut anchor = HistogramUs::default();
            anchor.record(4.0 + i as f64);
            let mut lead = HistogramUs::default();
            lead.record(36.0);
            out.metrics = Some(TrialMetrics {
                anchor_error: Some(anchor),
                lead_time: Some(lead),
                ifs_delta: None,
                events_total: 100,
                events_per_sec: 50.0,
                sync_wall_s: 1.0,
                attack_wall_s: 1.0,
                phase_profile: Vec::new(),
            });
        }
        let r = SeriesReport::from_outcomes("hop", 36.0, &o);
        let anchor = r.anchor_error_us.expect("merged anchor histogram");
        assert_eq!(anchor.count, 2);
        assert_eq!(r.lead_time_us.expect("merged lead histogram").count, 2);
        assert_eq!(r.events_per_sec, Some(50.0));
        let json = rows_to_json(&[r]);
        assert!(json.contains("\"anchor_error_us\":{\"count\":2"));
    }
}
