//! Experiment reporting: console tables + JSON artefacts.

use std::io::Write as _;
use std::path::PathBuf;

use serde::Serialize;

use crate::stats::Summary;
use crate::trial::TrialOutcome;

/// One row of an experiment series: a parameter value and its outcome
/// distribution.
#[derive(Debug, Clone, Serialize)]
pub struct SeriesReport {
    /// The swept parameter's name.
    pub parameter: String,
    /// The swept parameter's value for this row.
    pub value: f64,
    /// Successful trials out of total.
    pub succeeded: usize,
    /// Total trials.
    pub trials: usize,
    /// Attempts-before-success distribution over successful trials.
    pub attempts: Summary,
    /// Raw attempt counts.
    pub raw: Vec<u32>,
}

impl SeriesReport {
    /// Builds a row from trial outcomes.
    ///
    /// # Panics
    ///
    /// Panics if no trial succeeded (the experiment cannot be summarised).
    pub fn from_outcomes(parameter: &str, value: f64, outcomes: &[TrialOutcome]) -> SeriesReport {
        let raw: Vec<u32> = outcomes.iter().filter_map(|o| o.attempts).collect();
        assert!(
            !raw.is_empty(),
            "{parameter}={value}: no successful trial to summarise"
        );
        SeriesReport {
            parameter: parameter.to_string(),
            value,
            succeeded: raw.len(),
            trials: outcomes.len(),
            attempts: Summary::of(&raw),
            raw,
        }
    }
}

/// Prints a Figure 9-style table and writes the JSON artefact to
/// `target/experiments/<name>.json`.
pub fn print_series(name: &str, title: &str, rows: &[SeriesReport]) {
    println!();
    println!("=== {title} ===");
    println!("(metric: injection attempts before the first confirmed success)");
    println!();
    println!(
        "{:>12} | {:>7} | {:>6} {:>6} {:>6} {:>6} {:>6} | {:>7} | {:>8}",
        rows.first()
            .map(|r| r.parameter.as_str())
            .unwrap_or("value"),
        "success",
        "min",
        "q1",
        "median",
        "q3",
        "max",
        "mean",
        "variance"
    );
    println!("{}", "-".repeat(92));
    for r in rows {
        println!(
            "{:>12} | {:>4}/{:<2} | {:>6.0} {:>6.1} {:>6.1} {:>6.1} {:>6.0} | {:>7.2} | {:>8.2}",
            r.value,
            r.succeeded,
            r.trials,
            r.attempts.min,
            r.attempts.q1,
            r.attempts.median,
            r.attempts.q3,
            r.attempts.max,
            r.attempts.mean,
            r.attempts.variance
        );
    }
    println!();
    if let Err(err) = write_json(name, rows) {
        eprintln!("warning: could not write JSON artefact: {err}");
    }
}

fn write_json(name: &str, rows: &[SeriesReport]) -> std::io::Result<()> {
    let dir = artefact_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut file = std::fs::File::create(&path)?;
    let json = to_json(rows);
    file.write_all(json.as_bytes())?;
    println!("[artefact] {}", path.display());
    Ok(())
}

/// Workspace-relative artefact directory.
pub fn artefact_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments")
}

/// Minimal JSON encoding (serde-derive model, hand-rolled writer keeps the
/// dependency surface small).
fn to_json(rows: &[SeriesReport]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"parameter\":\"{}\",\"value\":{},\"succeeded\":{},\"trials\":{},\
             \"min\":{},\"q1\":{},\"median\":{},\"q3\":{},\"max\":{},\"mean\":{:.3},\
             \"variance\":{:.3},\"raw\":{:?}}}",
            r.parameter,
            r.value,
            r.succeeded,
            r.trials,
            r.attempts.min,
            r.attempts.q1,
            r.attempts.median,
            r.attempts.q3,
            r.attempts.max,
            r.attempts.mean,
            r.attempts.variance,
            r.raw
        ));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trial::TrialOutcome;

    fn outcomes(attempts: &[u32]) -> Vec<TrialOutcome> {
        attempts
            .iter()
            .map(|&a| TrialOutcome {
                attempts: Some(a),
                sim_seconds: 1.0,
                effect_observed: true,
            })
            .collect()
    }

    #[test]
    fn report_from_outcomes() {
        let r = SeriesReport::from_outcomes("hop", 25.0, &outcomes(&[1, 2, 3]));
        assert_eq!(r.succeeded, 3);
        assert_eq!(r.attempts.median, 2.0);
    }

    #[test]
    fn failed_trials_excluded_from_distribution() {
        let mut o = outcomes(&[4, 6]);
        o.push(TrialOutcome {
            attempts: None,
            sim_seconds: 60.0,
            effect_observed: false,
        });
        let r = SeriesReport::from_outcomes("d", 10.0, &o);
        assert_eq!(r.succeeded, 2);
        assert_eq!(r.trials, 3);
    }

    #[test]
    fn json_is_wellformed_enough() {
        let r = SeriesReport::from_outcomes("x", 1.0, &outcomes(&[1]));
        let json = to_json(&[r]);
        assert!(json.starts_with('['));
        assert!(json.contains("\"median\":1"));
    }
}
