//! End-to-end attack benchmarks: how much wall-clock the simulator needs
//! per simulated second of a victim connection, and per complete injection
//! trial — the numbers that size the Figure 9 sweeps.

use bench::rig::{ExperimentRig, RigConfig};
use bench::telemetry::TelemetryMode;
use bench::trial::{run_trial, TrialConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use simkit::Duration;

fn bench_connection_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    group.bench_function("one_second_of_connection", |b| {
        b.iter_batched(
            || {
                let mut rig = ExperimentRig::new(99, &RigConfig::default());
                rig.wait_synchronised(Duration::from_secs(20));
                rig
            },
            |mut rig| {
                rig.scenario.run_for(Duration::from_secs(1));
                std::hint::black_box(rig.scenario.now())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_full_injection_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack");
    group.sample_size(10);
    group.bench_function("injection_trial_to_first_success", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            // Telemetry off: this benchmark prices the simulator itself and
            // doubles as the no-regression check for disabled telemetry.
            let mut cfg = TrialConfig::new(7_000 + seed);
            cfg.telemetry = TelemetryMode::Off;
            std::hint::black_box(run_trial(&cfg))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_connection_simulation,
    bench_full_injection_trial
);
criterion_main!(benches);
