//! Telemetry overhead microbenchmarks.
//!
//! `emit_disabled` is the number the zero-cost claim rests on: with no
//! trace and no sinks attached, `NodeCtx::emit` must be a branch-and-return
//! that never builds the event. `emit_ring_sink` prices the enabled path
//! (event construction + ring push) for comparison.

use ble_phy::{Environment, NodeConfig, NodeCtx, Position, RadioEvent, RadioListener, Simulation};
use ble_telemetry::{RingBufferSink, SpanKind, TelemetryEvent};
use criterion::{criterion_group, criterion_main, Criterion};
use simkit::SimRng;

/// A listener that never reacts: the benchmarks drive emits directly.
struct Idle;

impl RadioListener for Idle {
    fn on_event(&mut self, _ctx: &mut NodeCtx<'_>, _event: RadioEvent) {}
}

fn sim_with_one_node() -> (Simulation, ble_phy::NodeId) {
    let mut sim = Simulation::new(Environment::indoor_default(), SimRng::seed_from(1));
    let id = sim.add_node(NodeConfig::new("bench", Position::new(0.0, 0.0)), Idle);
    (sim, id)
}

fn bench_emit_disabled(c: &mut Criterion) {
    let (mut sim, id) = sim_with_one_node();
    c.bench_function("telemetry/emit_disabled", |b| {
        sim.with_ctx(id, |ctx| {
            b.iter(|| {
                ctx.emit(|| TelemetryEvent::CrcFail {
                    channel: std::hint::black_box(7),
                })
            })
        });
    });
}

fn bench_emit_ring_sink(c: &mut Criterion) {
    let (mut sim, id) = sim_with_one_node();
    sim.add_telemetry_sink(Box::new(RingBufferSink::new(4_096)));
    c.bench_function("telemetry/emit_ring_sink", |b| {
        sim.with_ctx(id, |ctx| {
            b.iter(|| {
                ctx.emit(|| TelemetryEvent::CrcFail {
                    channel: std::hint::black_box(7),
                })
            })
        });
    });
}

/// The span zero-cost claim: with no sink attached, an enter/exit pair must
/// be two branch-and-returns — no id allocation, no stack push, and the
/// injected wall clock is never read (the clock below would poison the
/// numbers if it were).
fn bench_span_disabled(c: &mut Criterion) {
    fn clock() -> u64 {
        std::hint::black_box(7)
    }
    let (mut sim, id) = sim_with_one_node();
    sim.set_span_clock(clock);
    c.bench_function("telemetry/span_disabled", |b| {
        sim.with_ctx(id, |ctx| {
            b.iter(|| {
                let span = ctx.span_enter(SpanKind::ChannelAirtime, std::hint::black_box(7));
                ctx.span_exit(span);
            })
        });
    });
}

/// The enabled path for comparison: id allocation, stack push/remove, two
/// clock reads and two ring pushes per pair.
fn bench_span_ring_sink(c: &mut Criterion) {
    fn clock() -> u64 {
        std::hint::black_box(7)
    }
    let (mut sim, id) = sim_with_one_node();
    sim.set_span_clock(clock);
    sim.add_telemetry_sink(Box::new(RingBufferSink::new(4_096)));
    c.bench_function("telemetry/span_ring_sink", |b| {
        sim.with_ctx(id, |ctx| {
            b.iter(|| {
                let span = ctx.span_enter(SpanKind::ChannelAirtime, std::hint::black_box(7));
                ctx.span_exit(span);
            })
        });
    });
}

criterion_group!(
    benches,
    bench_emit_disabled,
    bench_emit_ring_sink,
    bench_span_disabled,
    bench_span_ring_sink
);
criterion_main!(benches);
