//! Medium hot-path benchmarks: the zero-allocation frame pipeline.
//!
//! `frame_delivery` prices one steady-state Tx → medium → Rx delivery
//! (the path the counting-allocator test in `tests/alloc_budget.rs` pins
//! at zero heap allocations). `broadcast_N` scales the same frame across
//! N open receivers — the per-receiver cost used to be a `Vec` clone per
//! listener before the inline `Pdu` rework. `dense_Nn_{sharded,broadcast}`
//! prices channel-sharded delivery against the full-broadcast oracle in a
//! dense multi-channel world (16 and 128 nodes), the workload the
//! listener-index rework targets. The `crc24`/`whitening` groups compare
//! the table-driven implementations against the retained bitwise
//! reference implementations they replaced.

use ble_phy::{
    crc24, crc24_bitwise, whiten_in_place, whiten_in_place_bitwise, AccessAddress, AccessFilter,
    Channel, DeliveryMode, Environment, NodeConfig, NodeCtx, Pdu, Position, RadioEvent,
    RadioListener, RawFrame, Simulation, TimerKey,
};
use criterion::{criterion_group, criterion_main, Criterion};
use simkit::{Duration, SimRng};

/// Transmits a fixed frame whenever its timer fires.
struct Beacon {
    period: Duration,
    pdu: Pdu,
}

impl RadioListener for Beacon {
    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        if let RadioEvent::Timer { .. } = event {
            ctx.set_timer_local(self.period, TimerKey(1));
            if !ctx.is_transmitting() {
                let frame = RawFrame::new(
                    AccessAddress::ADVERTISING,
                    self.pdu.clone(),
                    ble_phy::ADVERTISING_CRC_INIT,
                );
                ctx.transmit(Channel::advertising_wrapped(0), frame);
            }
        }
    }
}

/// Stays locked on the advertising channel and counts deliveries.
struct Sink;

impl RadioListener for Sink {
    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        if let RadioEvent::FrameReceived(frame) = event {
            std::hint::black_box(frame.pdu.len());
            ctx.start_rx(
                Channel::advertising_wrapped(0),
                AccessFilter::Any,
                ble_phy::ADVERTISING_CRC_INIT,
            );
        }
    }
}

fn payload_pdu(len: usize) -> Pdu {
    let mut pdu = Pdu::new();
    for i in 0..len {
        #[allow(clippy::cast_possible_truncation)]
        let byte = (i & 0xFF) as u8;
        pdu.try_push(byte).expect("bench payload fits");
    }
    pdu
}

fn broadcast_sim(receivers: usize) -> Simulation {
    let mut sim = Simulation::new(
        Environment::indoor_default(),
        SimRng::seed_from(11 + receivers as u64),
    );
    let tx = sim.add_node(
        NodeConfig::new("beacon", Position::new(0.0, 0.0)),
        Beacon {
            period: Duration::from_micros(500),
            pdu: payload_pdu(22),
        },
    );
    sim.with_ctx(tx, |ctx| {
        ctx.set_timer_local(Duration::from_micros(500), TimerKey(1));
    });
    for i in 0..receivers {
        let rx = sim.add_node(
            NodeConfig::new(format!("sink{i}"), Position::new(1.0 + i as f64 * 0.5, 0.0)),
            Sink,
        );
        sim.with_ctx(rx, |ctx| {
            ctx.start_rx(
                Channel::advertising_wrapped(0),
                AccessFilter::Any,
                ble_phy::ADVERTISING_CRC_INIT,
            );
        });
    }
    sim
}

fn bench_frame_delivery(c: &mut Criterion) {
    // One beacon, one receiver, frames every 500 µs → each run_for(10 ms)
    // delivers ~20 frames through the full pipeline.
    let mut sim = broadcast_sim(1);
    c.bench_function("medium/frame_delivery_10ms", |b| {
        b.iter(|| {
            sim.run_for(Duration::from_millis(10));
            std::hint::black_box(sim.now());
        });
    });
}

fn bench_broadcast(c: &mut Criterion) {
    for receivers in [2usize, 8] {
        let mut sim = broadcast_sim(receivers);
        c.bench_function(&format!("medium/broadcast_{receivers}rx_10ms"), |b| {
            b.iter(|| {
                sim.run_for(Duration::from_millis(10));
                std::hint::black_box(sim.now());
            });
        });
    }
}

/// Stays locked on one data channel and re-opens after every frame.
struct PinnedSink {
    channel: Channel,
}

impl RadioListener for PinnedSink {
    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        if let RadioEvent::FrameReceived(frame) = event {
            std::hint::black_box(frame.pdu.len());
            ctx.start_rx(self.channel, AccessFilter::Any, 0x55_5551);
        }
    }
}

/// Transmits on a rotating data channel whenever its timer fires.
struct HoppingBeacon {
    period: Duration,
    pdu: Pdu,
    next: u8,
}

impl RadioListener for HoppingBeacon {
    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        if let RadioEvent::Timer { .. } = event {
            ctx.set_timer_local(self.period, TimerKey(1));
            if !ctx.is_transmitting() {
                let frame =
                    RawFrame::new(AccessAddress::new(0x50C2_33A1), self.pdu.clone(), 0x55_5551);
                ctx.transmit(Channel::data_wrapped(self.next), frame);
                self.next = (self.next + 1) % 37;
            }
        }
    }
}

/// A dense world: `nodes` pinned listeners spread over the 37 data
/// channels plus one channel-hopping beacon. Each frame concerns only the
/// handful of listeners sharing its channel — exactly the workload where
/// sharded delivery stops paying O(nodes) per transmission.
fn dense_sim(nodes: usize, mode: DeliveryMode) -> Simulation {
    let mut sim = Simulation::new(
        Environment::indoor_default(),
        SimRng::seed_from(23 + nodes as u64),
    );
    sim.set_delivery_mode(mode);
    for i in 0..nodes {
        #[allow(clippy::cast_possible_truncation)]
        let channel = Channel::data_wrapped((i % 37) as u8);
        let rx = sim.add_node(
            NodeConfig::new(
                format!("pin{i}"),
                Position::new((i % 12) as f64 * 2.0, (i / 12) as f64 * 2.0),
            ),
            PinnedSink { channel },
        );
        sim.with_ctx(rx, |ctx| {
            ctx.start_rx(channel, AccessFilter::Any, 0x55_5551);
        });
    }
    let tx = sim.add_node(
        NodeConfig::new("hopper", Position::new(5.0, 5.0)),
        HoppingBeacon {
            period: Duration::from_micros(500),
            pdu: payload_pdu(22),
            next: 0,
        },
    );
    sim.with_ctx(tx, |ctx| {
        ctx.set_timer_local(Duration::from_micros(500), TimerKey(1));
    });
    sim
}

fn bench_dense_delivery(c: &mut Criterion) {
    // Prices sharded vs full-broadcast scheduling head-to-head at 16 and
    // 128 nodes. The 128-node split is the headline number for the
    // channel-sharding PR: broadcast scales per frame with world size,
    // sharded with co-channel listener count.
    for nodes in [16usize, 128] {
        for (mode, tag) in [
            (DeliveryMode::Sharded, "sharded"),
            (DeliveryMode::FullBroadcast, "broadcast"),
        ] {
            let mut sim = dense_sim(nodes, mode);
            c.bench_function(&format!("medium/dense_{nodes}n_{tag}_10ms"), |b| {
                b.iter(|| {
                    sim.run_for(Duration::from_millis(10));
                    std::hint::black_box(sim.now());
                });
            });
        }
    }
}

fn bench_crc_table_vs_bitwise(c: &mut Criterion) {
    let payload: Vec<u8> = (0..=254u8).collect();
    c.bench_function("medium/crc24_table_255B", |b| {
        b.iter(|| std::hint::black_box(crc24(0x55_5551, std::hint::black_box(&payload))))
    });
    c.bench_function("medium/crc24_bitwise_255B", |b| {
        b.iter(|| std::hint::black_box(crc24_bitwise(0x55_5551, std::hint::black_box(&payload))))
    });
}

fn bench_whitening_table_vs_bitwise(c: &mut Criterion) {
    let ch = Channel::new(17).expect("valid channel");
    let mut buf: Vec<u8> = (0..=254u8).collect();
    c.bench_function("medium/whitening_table_255B", |b| {
        b.iter(|| {
            whiten_in_place(ch, std::hint::black_box(&mut buf));
            std::hint::black_box(buf[0]);
        })
    });
    c.bench_function("medium/whitening_bitwise_255B", |b| {
        b.iter(|| {
            whiten_in_place_bitwise(ch, std::hint::black_box(&mut buf));
            std::hint::black_box(buf[0]);
        })
    });
}

criterion_group!(
    benches,
    bench_frame_delivery,
    bench_broadcast,
    bench_dense_delivery,
    bench_crc_table_vs_bitwise,
    bench_whitening_table_vs_bitwise
);
criterion_main!(benches);
