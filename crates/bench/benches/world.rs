//! World construction and medium-dispatch microbenchmarks.
//!
//! `construct` prices standing up the full three-node experiment rig
//! (environment, nodes, connection bootstrap) — the fixed cost every trial
//! pays before a single radio event fires. `dispatch_timers` prices the
//! scheduler's hot path: popping an event and handing it to the owning
//! node, isolated from protocol work by using self-rescheduling timers.
//! `dispatch_frames` adds the radio path (transmit → propagation → lock →
//! delivery) between two nodes.

use bench::rig::{ExperimentRig, RigConfig};
use ble_phy::{
    AccessAddress, AccessFilter, Channel, Environment, NodeConfig, NodeCtx, Position, RadioEvent,
    RadioListener, RawFrame, Simulation, TimerKey,
};
use criterion::{criterion_group, criterion_main, Criterion};
use simkit::{Duration, SimRng};

/// Re-arms its own timer forever: every dispatched event costs one timer
/// pop + one schedule, nothing else.
struct Ticker {
    period: Duration,
}

impl RadioListener for Ticker {
    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        if let RadioEvent::Timer { .. } = event {
            ctx.set_timer_local(self.period, TimerKey(1));
        }
    }
}

/// Transmits a short frame whenever its timer fires; the peer listens.
struct Beacon {
    period: Duration,
}

impl RadioListener for Beacon {
    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        if let RadioEvent::Timer { .. } = event {
            ctx.set_timer_local(self.period, TimerKey(1));
            if !ctx.is_transmitting() {
                let frame = RawFrame::new(
                    AccessAddress::ADVERTISING,
                    vec![0u8; 12],
                    ble_phy::ADVERTISING_CRC_INIT,
                );
                ctx.transmit(Channel::advertising_wrapped(0), frame);
            }
        }
    }
}

/// Keeps the receiver open on the advertising channel.
struct Sink;

impl RadioListener for Sink {
    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        if let RadioEvent::FrameReceived(_) = event {
            ctx.start_rx(
                Channel::advertising_wrapped(0),
                AccessFilter::Any,
                ble_phy::ADVERTISING_CRC_INIT,
            );
        }
    }
}

fn bench_construct(c: &mut Criterion) {
    let cfg = RigConfig::default();
    c.bench_function("world/construct_rig", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            std::hint::black_box(ExperimentRig::new(seed, &cfg));
        });
    });
}

fn bench_dispatch_timers(c: &mut Criterion) {
    // Four nodes each firing every 10 µs → each run_for(1 ms) dispatches
    // ~400 timer events through the medium.
    let mut sim = Simulation::new(Environment::indoor_default(), SimRng::seed_from(7));
    let mut ids = Vec::new();
    for i in 0..4 {
        let id = sim.add_node(
            NodeConfig::new(format!("t{i}"), Position::new(i as f64, 0.0)),
            Ticker {
                period: Duration::from_micros(10),
            },
        );
        ids.push(id);
    }
    for &id in &ids {
        sim.with_ctx(id, |ctx| {
            ctx.set_timer_local(Duration::from_micros(10), TimerKey(1));
        });
    }
    c.bench_function("world/dispatch_timers_1ms", |b| {
        b.iter(|| {
            sim.run_for(Duration::from_millis(1));
            std::hint::black_box(sim.now());
        });
    });
}

fn bench_dispatch_frames(c: &mut Criterion) {
    let mut sim = Simulation::new(Environment::indoor_default(), SimRng::seed_from(9));
    let tx = sim.add_node(
        NodeConfig::new("beacon", Position::new(0.0, 0.0)),
        Beacon {
            period: Duration::from_micros(500),
        },
    );
    let rx = sim.add_node(NodeConfig::new("sink", Position::new(2.0, 0.0)), Sink);
    sim.with_ctx(tx, |ctx| {
        ctx.set_timer_local(Duration::from_micros(500), TimerKey(1));
    });
    sim.with_ctx(rx, |ctx| {
        ctx.start_rx(
            Channel::advertising_wrapped(0),
            AccessFilter::Any,
            ble_phy::ADVERTISING_CRC_INIT,
        );
    });
    c.bench_function("world/dispatch_frames_10ms", |b| {
        b.iter(|| {
            sim.run_for(Duration::from_millis(10));
            std::hint::black_box(sim.now());
        });
    });
}

criterion_group!(
    benches,
    bench_construct,
    bench_dispatch_timers,
    bench_dispatch_frames
);
criterion_main!(benches);
