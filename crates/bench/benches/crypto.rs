//! Criterion micro-benchmarks for the cryptographic substrate.
//!
//! These gauge the per-packet cost of the encryption countermeasure: the
//! paper argues systematic encryption mitigates InjectaBLE; this quantifies
//! what that costs per Link-Layer PDU in our implementation.

use ble_crypto::{ccm, Aes128, Direction, LinkCipher, SessionKeyMaterial};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench_aes_block(c: &mut Criterion) {
    let cipher = Aes128::new(&[0x2B; 16]);
    let block = [0x6B; 16];
    c.bench_function("aes128/encrypt_block", |b| {
        b.iter(|| std::hint::black_box(cipher.encrypt_block(std::hint::black_box(&block))))
    });
}

fn bench_key_schedule(c: &mut Criterion) {
    c.bench_function("aes128/key_schedule", |b| {
        b.iter(|| std::hint::black_box(Aes128::new(std::hint::black_box(&[0x42; 16]))))
    });
}

fn bench_ccm(c: &mut Criterion) {
    let cipher = Aes128::new(&[0x42; 16]);
    let nonce = [0x13; 13];
    for len in [27usize, 251] {
        let payload = vec![0xA5u8; len];
        c.bench_function(&format!("ccm/encrypt_{len}B"), |b| {
            b.iter(|| std::hint::black_box(ccm::encrypt(&cipher, &nonce, &[0x02], &payload, 4)))
        });
        let sealed = ccm::encrypt(&cipher, &nonce, &[0x02], &payload, 4);
        c.bench_function(&format!("ccm/decrypt_{len}B"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    ccm::decrypt(&cipher, &nonce, &[0x02], &sealed, 4).expect("valid"),
                )
            })
        });
    }
}

fn bench_link_cipher_packet(c: &mut Criterion) {
    let material = SessionKeyMaterial {
        skd_m: [1; 8],
        skd_s: [2; 8],
        iv_m: [3; 4],
        iv_s: [4; 4],
    };
    c.bench_function("link_cipher/per_packet_27B", |b| {
        b.iter_batched(
            || LinkCipher::new(&[0x4C; 16], &material),
            |mut cipher| {
                std::hint::black_box(cipher.encrypt(Direction::MasterToSlave, 0x02, &[0xA5; 27]))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_aes_block,
    bench_key_schedule,
    bench_ccm,
    bench_link_cipher_packet
);
criterion_main!(benches);
