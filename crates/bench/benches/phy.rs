//! Criterion micro-benchmarks for PHY/Link-Layer algorithms: the per-frame
//! code paths the simulated radio and the attack tooling execute millions
//! of times during the sensitivity sweeps.

use ble_link::{ChannelMap, ConnectionParams, Csa1, Csa2, DataPdu, Llid};
use ble_phy::{crc24, whitened, AccessAddress, Channel};
use criterion::{criterion_group, criterion_main, Criterion};
use simkit::SimRng;

fn bench_crc(c: &mut Criterion) {
    let payload: Vec<u8> = (0..27).collect();
    c.bench_function("phy/crc24_27B", |b| {
        b.iter(|| std::hint::black_box(crc24(0xABCDEF, std::hint::black_box(&payload))))
    });
    let big: Vec<u8> = (0..255u8).collect();
    c.bench_function("phy/crc24_255B", |b| {
        b.iter(|| std::hint::black_box(crc24(0xABCDEF, std::hint::black_box(&big))))
    });
}

fn bench_whitening(c: &mut Criterion) {
    let ch = Channel::new(17).expect("valid channel");
    let payload: Vec<u8> = (0..27).collect();
    c.bench_function("phy/whitening_27B", |b| {
        b.iter(|| std::hint::black_box(whitened(ch, std::hint::black_box(&payload))))
    });
}

fn bench_channel_selection(c: &mut Criterion) {
    let map = ChannelMap::ALL.without(3).without(17).without(30);
    c.bench_function("csa1/next_channel", |b| {
        let mut csa = Csa1::new(7);
        b.iter(|| std::hint::black_box(csa.next_channel(&map)))
    });
    let csa2 = Csa2::new(AccessAddress::new(0x50C2_33A1));
    c.bench_function("csa2/channel_for_event", |b| {
        let mut counter = 0u16;
        b.iter(|| {
            counter = counter.wrapping_add(1);
            std::hint::black_box(csa2.channel_for_event(counter, &map))
        })
    });
}

fn bench_pdu_codec(c: &mut Criterion) {
    let pdu = DataPdu::new(Llid::StartOrComplete, true, false, false, vec![0xA5; 20]);
    let bytes = pdu.to_bytes();
    c.bench_function("pdu/data_encode", |b| {
        b.iter(|| std::hint::black_box(pdu.to_bytes()))
    });
    c.bench_function("pdu/data_decode", |b| {
        b.iter(|| std::hint::black_box(DataPdu::from_bytes(std::hint::black_box(&bytes))))
    });
    let params = ConnectionParams::typical(&mut SimRng::seed_from(1), 36);
    let encoded = params.to_bytes();
    c.bench_function("pdu/connect_req_params_decode", |b| {
        b.iter(|| {
            std::hint::black_box(ConnectionParams::from_bytes(std::hint::black_box(&encoded)))
        })
    });
}

criterion_group!(
    benches,
    bench_crc,
    bench_whitening,
    bench_channel_selection,
    bench_pdu_codec
);
criterion_main!(benches);
