//! RSS-flat soak for the streaming campaign runner.
//!
//! The old in-memory path buffered every `TrialOutcome` (~hundreds of
//! bytes each), so peak RSS grew linearly with campaign size and a
//! million-trial campaign was an allocation bomb. The streaming path folds
//! each outcome into the `SeriesAccumulator` as it arrives; per-trial
//! state is the 4-byte `raw` attempts entry the artefact format itself
//! publishes. This soak runs 10 000 trials, records the process
//! high-water mark (`VmHWM`), then runs 1 000 000 trials and requires the
//! high-water mark to move by less than a fixed budget — two orders of
//! magnitude more trials must not cost two orders of magnitude more
//! memory.
//!
//! Trials are a cheap deterministic synthetic (a splitmix64 scramble of
//! the per-trial seed), mirroring the unit-test runner: the soak measures
//! the *aggregation machinery*, not the simulator. Both campaign sizes are
//! cross-checked against independent folds of the same outcomes, so the
//! flat memory profile cannot come from dropping data.
//!
//! `VmHWM` is a process-lifetime high-water mark, so both runs live in
//! this one test, small first — and this file is its own integration-test
//! binary so no other test inflates the baseline.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)] // test code may panic freely

use bench::campaign::{run_campaign_with, CampaignConfig, SeriesAccumulator};
use bench::report::{peak_rss_kb, rows_to_json};
use bench::trial::trial_seed;
use bench::{SeriesReport, TrialConfig, TrialMetrics, TrialOutcome};
use ble_telemetry::HistogramUs;

const SEED: u64 = 4_242;
const SMALL: u64 = 10_000;
const BIG: u64 = 1_000_000;
/// Allowed `VmHWM` growth between the 10k and 1M runs. The 1M run's own
/// bounded state (two 4 MB `raw` vectors plus the ~8 MB artefact strings
/// the cross-check renders) fits comfortably; the ~300 MB a buffered
/// `Vec<TrialOutcome>` would need does not.
const BUDGET_KB: u64 = 64 * 1024;

/// Deterministic synthetic trial: a splitmix64 scramble of the config's
/// (per-trial) seed, shaped like a plausible outcome.
fn synth(cfg: &TrialConfig) -> TrialOutcome {
    let mut x = cfg.seed;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let attempts = (!x.is_multiple_of(16)).then_some(u32::try_from(x % 50).unwrap_or(0) + 1);
    let mut lead = HistogramUs::default();
    lead.record((x % 200) as f64);
    let metrics = TrialMetrics {
        events_total: x % 1000,
        events_per_sec: (x % 1000) as f64 / 3.0,
        lead_time: Some(lead),
        ..TrialMetrics::default()
    };
    TrialOutcome {
        attempts,
        sim_seconds: (x % 500) as f64 / 10.0,
        effect_observed: attempts.is_some(),
        metrics: Some(metrics),
        telemetry_downgraded: false,
    }
}

fn campaign(count: u64) -> SeriesReport {
    let base = TrialConfig::new(SEED);
    let run = run_campaign_with(&base, count, "soak", 1.0, &CampaignConfig::default(), synth);
    assert!(run.finished);
    run.report
}

#[test]
fn million_trial_campaign_holds_rss_flat_and_drops_no_data() {
    std::env::set_var("BENCH_THREADS", "4");
    let base = TrialConfig::new(SEED);

    // 10k: the streamed row must equal the in-memory path's row.
    let outcomes: Vec<TrialOutcome> = (0..SMALL)
        .map(|i| {
            let mut cfg = base.clone();
            cfg.seed = trial_seed(SEED, i);
            synth(&cfg)
        })
        .collect();
    let in_memory = SeriesReport::from_outcomes("soak", 1.0, &outcomes);
    drop(outcomes);
    assert_eq!(
        rows_to_json(&[campaign(SMALL)]),
        rows_to_json(&[in_memory]),
        "10k campaign must match the in-memory path byte-for-byte"
    );
    let rss_small = peak_rss_kb().expect("VmHWM in /proc/self/status");

    // 1M: the streamed row must equal a sequential one-at-a-time fold
    // (no buffered reference vector — it would dominate the RSS budget).
    let mut reference = SeriesAccumulator::new(BIG);
    for i in 0..BIG {
        let mut cfg = base.clone();
        cfg.seed = trial_seed(SEED, i);
        reference.fold(&synth(&cfg));
    }
    assert_eq!(
        rows_to_json(&[campaign(BIG)]),
        rows_to_json(&[reference.report("soak", 1.0)]),
        "1M campaign must match a sequential fold byte-for-byte"
    );
    let rss_big = peak_rss_kb().expect("VmHWM in /proc/self/status");

    let growth = rss_big.saturating_sub(rss_small);
    assert!(
        growth < BUDGET_KB,
        "peak RSS grew {growth} kB between the 10k and 1M campaigns \
         (budget {BUDGET_KB} kB): the runner is buffering per-trial state"
    );
}
