//! Zero-allocation budget for the steady-state frame pipeline.
//!
//! A counting global allocator wraps `System`; after a warm-up window has
//! grown every queue and buffer to capacity, a steady stream of
//! Tx → medium → Rx deliveries (no collision, telemetry off) must perform
//! **zero** heap allocations. This pins the inline-`Pdu` rework: any future
//! `Vec`/`clone()` reintroduced on the delivery path trips this test.
//!
//! Kept as its own integration-test binary so the global allocator does not
//! leak into unrelated tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use ble_host::gatt::props;
use ble_host::{GattServer, HostStack, Uuid};
use ble_link::{AddressType, DeviceAddress, LinkLayerDelegate};
use ble_phy::{
    AccessAddress, AccessFilter, Channel, Environment, NodeConfig, NodeCtx, Pdu, Position,
    RadioEvent, RadioListener, RawFrame, Simulation, TimerKey,
};
use simkit::{Duration, FaultPlan, SimRng};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Armed only on the measuring thread, only across the steady-state
    // window. Counting process-wide instead makes the test flaky: the
    // libtest harness thread occasionally allocates (channel buffering)
    // concurrently with the measured window and the budget blames the
    // simulation for it.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

/// Returns whether the current thread is inside a measured window.
///
/// `try_with` so a (de)allocation during thread teardown — after the TLS
/// slot is destroyed — is simply not counted instead of aborting.
fn counting() -> bool {
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

/// Counts every allocation and reallocation on the armed thread, then
/// defers to `System`.
struct CountingAllocator;

// SAFETY: pure pass-through to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if counting() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Transmits a fixed 22-byte frame every 500 µs. With `spans` set it brackets
/// each transmission in a span enter/exit pair — with no sink attached both
/// calls must stay on the branch-and-return path.
struct Beacon {
    pdu: Pdu,
    sent: u64,
    spans: bool,
}

impl RadioListener for Beacon {
    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        if let RadioEvent::Timer { .. } = event {
            ctx.set_timer_local(Duration::from_micros(500), TimerKey(1));
            if !ctx.is_transmitting() {
                self.sent += 1;
                let span = if self.spans {
                    Some(ctx.span_enter(ble_telemetry::SpanKind::AttackerInject, 0))
                } else {
                    None
                };
                let frame = RawFrame::new(
                    AccessAddress::ADVERTISING,
                    self.pdu.clone(),
                    ble_phy::ADVERTISING_CRC_INIT,
                );
                ctx.transmit(Channel::advertising_wrapped(0), frame);
                if let Some(span) = span {
                    ctx.span_exit(span);
                }
            }
        }
    }
}

/// Counts good deliveries and re-opens the receive window.
struct Sink {
    received: u64,
}

impl RadioListener for Sink {
    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        if let RadioEvent::FrameReceived(frame) = event {
            if frame.crc_ok {
                self.received += 1;
            }
            ctx.start_rx(
                Channel::advertising_wrapped(0),
                AccessFilter::Any,
                ble_phy::ADVERTISING_CRC_INIT,
            );
        }
    }
}

/// Builds the beacon→sink scene, warms it up, then measures allocations
/// over a steady-state delivery window. `faults` (when given) is installed
/// before the warm-up; `spans` additionally installs a span clock and opens
/// a span pair around every transmission (disabled path: no sink attached).
fn measure_steady_state_with(faults: Option<FaultPlan>, spans: bool) -> (u64, u64) {
    let mut pdu = Pdu::new();
    pdu.try_extend_from_slice(&[0xC3; 22]).expect("22 B fits");

    let mut sim = Simulation::new(Environment::indoor_default(), SimRng::seed_from(5));
    if spans {
        // The clock must never be read on the disabled path; a counting
        // clock would not allocate anyway, but a constant keeps the test
        // honest about what the budget covers.
        fn fixed_clock() -> u64 {
            7
        }
        sim.set_span_clock(fixed_clock);
    }
    let tx = sim.add_node(
        NodeConfig::new("beacon", Position::new(0.0, 0.0)),
        Beacon {
            pdu,
            sent: 0,
            spans,
        },
    );
    let rx = sim.add_node(
        NodeConfig::new("sink", Position::new(2.0, 0.0)),
        Sink { received: 0 },
    );
    if let Some(plan) = faults {
        sim.install_faults(plan);
    }
    sim.with_ctx(tx, |ctx| {
        ctx.set_timer_local(Duration::from_micros(500), TimerKey(1));
    });
    sim.with_ctx(rx, |ctx| {
        ctx.start_rx(
            Channel::advertising_wrapped(0),
            AccessFilter::Any,
            ble_phy::ADVERTISING_CRC_INIT,
        );
    });

    // Warm-up: grow the event queue, tombstone set, and node scratch
    // buffers to their steady-state capacity.
    sim.run_for(Duration::from_millis(100));
    let received_before = sim.node::<Sink>(rx).expect("sink").received;
    assert!(received_before > 10, "warm-up must deliver frames");

    // Steady state: ~100 further deliveries must not touch the heap.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(true));
    sim.run_for(Duration::from_millis(50));
    COUNTING.with(|c| c.set(false));
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    let received = sim.node::<Sink>(rx).expect("sink").received - received_before;
    (delta, received)
}

fn measure_steady_state(faults: Option<FaultPlan>) -> (u64, u64) {
    measure_steady_state_with(faults, false)
}

#[test]
fn steady_state_frame_delivery_allocates_nothing() {
    let (delta, received) = measure_steady_state(None);
    assert!(
        received >= 90,
        "steady state must keep delivering: {received}"
    );
    assert_eq!(
        delta, 0,
        "steady-state frame delivery must not allocate ({delta} allocations over {received} deliveries)"
    );

    // An installed-but-empty FaultPlan must stay on the same zero-allocation
    // budget: every hot-path fault query is a single branch when the plan is
    // empty, so the delivery pipeline may not touch the heap either.
    let (delta, received) = measure_steady_state(Some(FaultPlan::default()));
    assert!(
        received >= 90,
        "steady state with an empty plan must keep delivering: {received}"
    );
    assert_eq!(
        delta, 0,
        "an empty FaultPlan must not add allocations ({delta} over {received} deliveries)"
    );
}

/// Moves every queued outgoing fragment of `from` into `to`, reusing one
/// scratch buffer — exactly what the Link Layer does at connection events.
fn shuttle(from: &mut HostStack, to: &mut HostStack, scratch: &mut Vec<u8>) {
    while let Some(llid) = from.poll_outgoing(scratch) {
        to.on_data(llid, scratch);
    }
}

/// One round of duplex host traffic: an unacknowledged ATT Write Command
/// one way, a Handle Value Notification the other, application events
/// drained on both sides (returning their pooled value buffers).
fn host_round(a: &mut HostStack, b: &mut HostStack, handle: u16, scratch: &mut Vec<u8>) {
    a.write_command(handle, &[0x01, 0x99, 0, 0, 0]);
    shuttle(a, b, scratch);
    b.notify(handle, &[0x42; 5]);
    shuttle(b, a, scratch);
    while a.poll_event().is_some() {}
    while b.poll_event().is_some() {}
}

#[test]
fn steady_state_host_queuing_allocates_nothing() {
    // Two host stacks wired back-to-back through the `LinkLayerDelegate`
    // seam (no radio: the budget under test is the ATT/L2CAP queuing path
    // by itself). Buffers crossing the seam are borrowed from each stack's
    // `PacketPool`; after a warm-up has grown every queue, scratch buffer,
    // and attribute value to capacity, a sustained duplex write/notify
    // stream must never touch the heap.
    let mk = |seed: u8| {
        HostStack::new(
            DeviceAddress::new([seed; 6], AddressType::Public),
            GattServer::new(),
            SimRng::seed_from(u64::from(seed)),
        )
    };
    let mut a = mk(0xA1);
    let mut b = mk(0xB2);
    let handle = b
        .server_mut()
        .service(Uuid::short(0xFFE0))
        .characteristic(
            Uuid::short(0xFFE1),
            props::READ | props::WRITE | props::WRITE_WITHOUT_RESPONSE,
            vec![0],
        )
        .finish();

    let mut scratch = Vec::new();
    for _ in 0..50 {
        host_round(&mut a, &mut b, handle, &mut scratch);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(true));
    for _ in 0..200 {
        host_round(&mut a, &mut b, handle, &mut scratch);
    }
    COUNTING.with(|c| c.set(false));
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "steady-state host queuing must not allocate ({delta} allocations over 200 duplex rounds)"
    );
    assert_eq!(
        b.server().value(handle),
        Some(&[0x01, 0x99, 0, 0, 0][..]),
        "the writes must actually land"
    );
    let stats = a.pool().stats();
    assert_eq!(
        stats.free, stats.capacity,
        "steady state must return every pooled buffer"
    );
}

#[test]
fn disabled_spans_with_an_installed_clock_allocate_nothing() {
    // The span layer's zero-cost claim: a span clock is installed (as the
    // experiment rig always does) but no sink is attached, so every
    // enter/exit pair on the delivery path must be a branch-and-return —
    // no id counter, no stack frame, no clock read, no heap.
    let (delta, received) = measure_steady_state_with(None, true);
    assert!(
        received >= 90,
        "steady state with spans must keep delivering: {received}"
    );
    assert_eq!(
        delta, 0,
        "disabled spans must not allocate ({delta} allocations over {received} deliveries)"
    );
}
