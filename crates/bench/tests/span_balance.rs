//! Span stream invariants over a full trial's JSONL capture.
//!
//! The flush path promises sinks a *balanced* span stream: every enter has
//! exactly one exit with matching id/kind/detail/node, and per node the
//! spans nest LIFO (a node's radio does one thing at a time). The profiler
//! and the timeline `--spans` lane both lean on these invariants, so they
//! are pinned here against a real trial rather than a synthetic trace.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)] // test code may panic freely

use std::collections::BTreeMap;

use bench::telemetry::TelemetryMode;
use bench::{run_trial, TrialConfig};
use ble_telemetry::{parse_line, TelemetryEvent};

#[test]
fn trial_span_stream_is_balanced_and_per_node_lifo() {
    let dir = std::env::temp_dir().join(format!("span_balance_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("trial.jsonl");
    let mut cfg = TrialConfig::new(42);
    cfg.telemetry = TelemetryMode::Jsonl(path.clone());
    let out = run_trial(&cfg);
    assert!(!out.telemetry_downgraded, "sink must open");
    assert!(out.attempts.is_some(), "trial must succeed");

    let text = std::fs::read_to_string(&path).expect("jsonl artefact");
    // Open spans by id → (kind name, detail, node); per-node LIFO stacks.
    let mut open: BTreeMap<u32, (String, u32, Option<u32>)> = BTreeMap::new();
    let mut stacks: BTreeMap<Option<u32>, Vec<u32>> = BTreeMap::new();
    let mut enters = 0usize;
    let mut exits = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let rec = parse_line(line)
            .unwrap_or_else(|| panic!("line {} does not parse: {line}", lineno + 1));
        match &rec.event {
            TelemetryEvent::SpanEnter { id, kind, detail } => {
                enters += 1;
                let prev = open.insert(*id, (kind.as_str().to_string(), *detail, rec.node));
                assert!(prev.is_none(), "span id {id} entered twice");
                stacks.entry(rec.node).or_default().push(*id);
            }
            TelemetryEvent::SpanExit {
                id, kind, detail, ..
            } => {
                exits += 1;
                let (enter_kind, enter_detail, enter_node) = open
                    .remove(id)
                    .unwrap_or_else(|| panic!("span id {id} exits without an enter"));
                assert_eq!(enter_kind, kind.as_str(), "kind changed across span {id}");
                assert_eq!(enter_detail, *detail, "detail changed across span {id}");
                assert_eq!(enter_node, rec.node, "node changed across span {id}");
                // Per-node LIFO: the exit must close the most recently
                // opened still-open span of its node.
                let stack = stacks.get_mut(&rec.node).expect("node has a stack");
                assert_eq!(
                    stack.pop(),
                    Some(*id),
                    "span {id} (node {:?}) exits out of LIFO order",
                    rec.node
                );
            }
            _ => {}
        }
    }
    assert!(enters > 10, "a real trial opens many spans: {enters}");
    assert_eq!(enters, exits, "every enter needs exactly one exit");
    assert!(
        open.is_empty(),
        "flush must balance still-open spans: {open:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
