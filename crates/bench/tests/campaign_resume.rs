//! Kill/resume integration for the streaming campaign runner.
//!
//! A campaign is interrupted mid-run via `max_chunks` — the in-process
//! stand-in for a kill: the invocation returns, all in-memory state is
//! dropped, and only the JSONL sidecar survives — then relaunched against
//! the same sidecar. The resumed run's final artefact row must be
//! byte-identical to an uninterrupted campaign's, at 1 and at 4 worker
//! threads, because resume must not depend on how trials were scheduled.
//!
//! Wall-clock-defined fields (`events_per_sec`, span `wall_ns` /
//! `self_wall_ns`, `trials_per_sec`, `peak_rss_kb`) are neutralised the
//! same way `cargo xtask determinism` neutralises them; every other byte
//! of the row is compared exactly.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)] // test code may panic freely

use std::path::{Path, PathBuf};

use bench::campaign::{run_campaign, CampaignConfig};
use bench::report::rows_to_json;
use bench::TrialConfig;

const TRIALS: u64 = 12;
const CHUNK: u64 = 2;
const SEED: u64 = 9_100;
/// Chunks merged before the simulated kill (of `TRIALS / CHUNK` total).
const KILL_AFTER: u64 = 2;

/// Replaces every wall-clock-defined `"<field>":<value>` with `0`,
/// mirroring `determinism::normalize_json`.
fn neutralize(raw: &str) -> String {
    let mut s = raw.to_string();
    for field in [
        "trials_per_sec",
        "peak_rss_kb",
        "events_per_sec",
        "wall_ns",
        "self_wall_ns",
    ] {
        let needle = format!("\"{field}\":");
        let mut out = String::with_capacity(s.len());
        let mut rest = s.as_str();
        while let Some(pos) = rest.find(&needle) {
            let after = pos + needle.len();
            out.push_str(&rest[..after]);
            out.push('0');
            let tail = &rest[after..];
            let end = tail
                .find(|c: char| {
                    !(c.is_ascii_digit()
                        || c == '.'
                        || c == '-'
                        || c == 'n'
                        || c == 'u'
                        || c == 'l')
                })
                .unwrap_or(tail.len());
            rest = &tail[end..];
        }
        out.push_str(rest);
        s = out;
    }
    s
}

fn config(checkpoint: Option<PathBuf>, max_chunks: Option<u64>) -> CampaignConfig {
    CampaignConfig {
        chunk_size: CHUNK,
        checkpoint,
        // Checkpoint every merged chunk so the kill point always has a
        // line to resume from regardless of where `max_chunks` lands.
        checkpoint_every_chunks: 1,
        max_chunks,
    }
}

/// One uninterrupted campaign: the reference bytes.
fn uninterrupted() -> String {
    let base = TrialConfig::new(SEED);
    let run = run_campaign(&base, TRIALS, "hop_interval", 36.0, &config(None, None));
    assert!(run.finished, "uninterrupted campaign must finish");
    assert_eq!(run.resumed_at_chunk, None);
    neutralize(&rows_to_json(&[run.report]))
}

/// Kill after `KILL_AFTER` chunks, then resume from the sidecar.
fn interrupted_then_resumed(dir: &Path) -> String {
    let sidecar = dir.join("exp1_hop_interval_36.jsonl");
    let base = TrialConfig::new(SEED);

    let first = run_campaign(
        &base,
        TRIALS,
        "hop_interval",
        36.0,
        &config(Some(sidecar.clone()), Some(KILL_AFTER)),
    );
    assert!(!first.finished, "the kill must land mid-campaign");
    assert!(sidecar.is_file(), "sidecar must survive the kill");

    let second = run_campaign(
        &base,
        TRIALS,
        "hop_interval",
        36.0,
        &config(Some(sidecar), None),
    );
    assert!(second.finished, "resume must complete the campaign");
    assert_eq!(
        second.resumed_at_chunk,
        Some(KILL_AFTER),
        "resume must pick up exactly where the kill landed"
    );
    neutralize(&rows_to_json(&[second.report]))
}

#[test]
fn interrupted_campaign_resumes_to_identical_bytes_across_thread_counts() {
    let scratch = std::env::temp_dir().join(format!("campaign_resume_{}", std::process::id()));
    let mut per_thread_reference = Vec::new();
    for threads in ["1", "4"] {
        std::env::set_var("BENCH_THREADS", threads);
        let dir = scratch.join(threads);
        std::fs::create_dir_all(&dir).expect("scratch dir");

        let reference = uninterrupted();
        let resumed = interrupted_then_resumed(&dir);
        assert_eq!(
            resumed, reference,
            "BENCH_THREADS={threads}: resumed artefact must be byte-identical \
             to the uninterrupted campaign"
        );
        per_thread_reference.push(reference);
    }
    assert_eq!(
        per_thread_reference[0], per_thread_reference[1],
        "campaign bytes must not depend on the worker-thread count"
    );
    std::fs::remove_dir_all(&scratch).ok();
}
