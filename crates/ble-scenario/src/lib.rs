//! Declarative scenario construction for the InjectaBLE reproduction.
//!
//! Every experiment, example and integration test in the workspace builds
//! the same basic scene: a victim Peripheral at the origin, a legitimate
//! Central on the +x axis, and (usually) an attacker nearby — the paper's
//! §VII testbed triangle. [`ScenarioBuilder`] is the single place that
//! scene is assembled: geometry and walls, device kind, connection
//! parameters, clock models, attacker placement and telemetry capture are
//! all knobs on the builder, and [`ScenarioBuilder::build`] performs the
//! RNG forks and node insertions in one fixed order so that a given preset
//! and seed always produce the identical world.
//!
//! The built [`Scenario`] owns its [`World`] (the arena owns every node;
//! see `ble-phy`), so it is `Send` and can be moved across threads for
//! parallel trials. Nodes are reached through typed accessors
//! ([`Scenario::victim`], [`Scenario::central_mut`], …) that downcast the
//! arena slot; post-build mutation (arming missions, installing
//! on-connect writes) happens through those before the world runs.
//!
//! # Example
//!
//! ```
//! use ble_scenario::{DeviceKind, ScenarioBuilder};
//!
//! let mut sc = ScenarioBuilder::legit(1).world_seed(2).build();
//! assert_eq!(sc.kind, DeviceKind::Lightbulb);
//! let control = sc.victim_control_handle();
//! sc.central_mut().on_connect_writes =
//!     vec![(control, ble_devices::bulb_payloads::power_on(), true)];
//! sc.run_for(simkit::Duration::from_secs(2));
//! assert!(sc.victim::<ble_devices::Lightbulb>().app.on);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod background;

pub use background::{BackgroundRx, BackgroundSchedule, BackgroundTx, RX_LEAD};

use std::path::PathBuf;

use ble_devices::{Central, Keyfob, Lightbulb, Smartwatch, CENTRAL_SLOTS};
use ble_host::ConnHandle;
use ble_link::{ConnectionParams, DeviceAddress};
use ble_phy::{
    AccessAddress, Environment, Node, NodeConfig, NodeId, PhyMode, Position, Wall, World,
};
use ble_telemetry::{JsonlSink, MetricsSink, SharedRegistry};
use injectable::{Attacker, AttackerConfig, ResyncPolicy};
use simkit::{DriftClock, Duration, FaultPlan, SimRng};

/// Which victim Peripheral the scenario stars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// RGB lightbulb (control characteristic; the paper's main target).
    Lightbulb,
    /// Key fob (immediate-alert characteristic).
    Keyfob,
    /// Smartwatch (message/SMS characteristic).
    Smartwatch,
}

impl DeviceKind {
    /// The address byte conventionally used for this device in the paper
    /// reproduction (`B1`/`F0`/`CC`).
    pub fn addr_byte(self) -> u8 {
        match self {
            DeviceKind::Lightbulb => 0xB1,
            DeviceKind::Keyfob => 0xF0,
            DeviceKind::Smartwatch => 0xCC,
        }
    }

    /// Conventional node label for the device.
    pub fn label(self) -> &'static str {
        match self {
            DeviceKind::Lightbulb => "bulb",
            DeviceKind::Keyfob => "fob",
            DeviceKind::Smartwatch => "watch",
        }
    }
}

/// How per-node sleep clocks draw their frequency error from the scenario
/// RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockModel {
    /// Gaussian error well inside the advertised bound
    /// ([`DriftClock::realistic`]) — a crystal at room temperature.
    Realistic,
    /// Uniform error across the whole bound
    /// ([`DriftClock::with_random_error`]) — worst-case spread.
    RandomError,
}

/// How the built world captures telemetry.
#[derive(Debug, Clone, Default)]
pub enum TelemetryMode {
    /// No sinks attached: every emit is a single branch-and-return (the
    /// configuration the criterion benchmarks pin).
    Off,
    /// In-memory metrics registry (counters + µs histograms), readable
    /// through [`Scenario::metrics`]. The default.
    #[default]
    Metrics,
    /// Metrics plus a JSONL event stream written to this path, replayable
    /// with the `timeline` binary. Parallel trials share the path and
    /// overwrite each other — use this for single trials.
    Jsonl(PathBuf),
}

/// Declarative description of an experiment scene; [`build`] turns it into
/// a running [`Scenario`].
///
/// [`build`]: ScenarioBuilder::build
#[derive(Debug)]
pub struct ScenarioBuilder {
    seed: u64,
    world_seed: Option<u64>,
    kind: DeviceKind,
    victim_label: Option<&'static str>,
    clock_model: ClockModel,
    victim_sca_ppm: f64,
    attacker_sca_ppm: f64,
    phy: PhyMode,
    hop_interval: u16,
    central_distance: f64,
    with_attacker: bool,
    attacker_distance: f64,
    attacker_y_sign: f64,
    attacker_pos_override: Option<Position>,
    attacker_tx_dbm: f64,
    attacker_anchor_noise_us: Option<f64>,
    attacker_resync: Option<ResyncPolicy>,
    widening_scale: f64,
    wall: Option<Wall>,
    telemetry: TelemetryMode,
    span_clock: Option<fn() -> u64>,
    faults: Option<FaultPlan>,
    extra_peripherals: usize,
    environment: Option<Environment>,
    background_pairs: usize,
    delivery_tracker: Option<usize>,
}

impl ScenarioBuilder {
    fn base(
        seed: u64,
        clock_model: ClockModel,
        attacker_y_sign: f64,
        attacker_tx_dbm: f64,
    ) -> Self {
        ScenarioBuilder {
            seed,
            world_seed: None,
            kind: DeviceKind::Lightbulb,
            victim_label: None,
            clock_model,
            victim_sca_ppm: 50.0,
            attacker_sca_ppm: 20.0,
            phy: PhyMode::Le1M,
            hop_interval: 36,
            central_distance: 2.0,
            with_attacker: true,
            attacker_distance: 2.0,
            attacker_y_sign,
            attacker_pos_override: None,
            attacker_tx_dbm,
            attacker_anchor_noise_us: None,
            attacker_resync: None,
            widening_scale: 1.0,
            wall: None,
            telemetry: TelemetryMode::Off,
            span_clock: None,
            faults: None,
            extra_peripherals: 0,
            environment: None,
            background_pairs: 0,
            delivery_tracker: None,
        }
    }

    /// The bench/paper experiment rig: realistic clocks (50/20 ppm), the
    /// attacker at (0, −d) with an nRF52840's default 0 dBm, the optional
    /// wall at y = −0.5 m between attacker and room.
    pub fn paper_rig(seed: u64) -> Self {
        Self::base(seed, ClockModel::Realistic, -1.0, 0.0)
    }

    /// The injectable integration-test rig: uniform clock errors, the
    /// attacker at (0, +d) transmitting at +8 dBm.
    pub fn attack_rig(seed: u64) -> Self {
        Self::base(seed, ClockModel::RandomError, 1.0, 8.0)
    }

    /// The §VI scenario-table scene: like [`paper_rig`] but the victim node
    /// is labelled `"victim"`.
    ///
    /// [`paper_rig`]: ScenarioBuilder::paper_rig
    pub fn scene(seed: u64) -> Self {
        let mut b = Self::base(seed, ClockModel::Realistic, -1.0, 0.0);
        b.victim_label = Some("victim");
        b
    }

    /// The documentation examples' scene: realistic clocks, the attacker at
    /// (0, +2) with 0 dBm.
    pub fn example(seed: u64) -> Self {
        Self::base(seed, ClockModel::Realistic, 1.0, 0.0)
    }

    /// A legitimate-traffic-only scene (no attacker), uniform clock errors —
    /// the device-crate test preset.
    pub fn legit(seed: u64) -> Self {
        let mut b = Self::base(seed, ClockModel::RandomError, 1.0, 0.0);
        b.with_attacker = false;
        b
    }

    /// Puts `n` peripherals of the scene's device kind on the air (clamped
    /// to the Central's [`CENTRAL_SLOTS`]). The first is the classic victim
    /// at the origin; the remaining `n − 1` are added to the scene *after*
    /// every classic node, each claiming one Central connection slot, so
    /// `multi_peripheral(1)` builds a world byte-identical to not calling
    /// this at all. Establishment is serialised: the Central connects the
    /// victim first, then each extra peer in slot order.
    pub fn multi_peripheral(mut self, n: usize) -> Self {
        self.extra_peripherals = n.clamp(1, CENTRAL_SLOTS) - 1;
        self
    }

    /// Seeds the world's own RNG independently of the scenario RNG (some
    /// legacy tests separate the two).
    pub fn world_seed(mut self, seed: u64) -> Self {
        self.world_seed = Some(seed);
        self
    }

    /// Replaces the default indoor propagation environment (a `wall_db` /
    /// `wall` knob still applies on top of this environment).
    pub fn environment(mut self, env: Environment) -> Self {
        self.environment = Some(env);
        self
    }

    /// Loads the scene with `n` background connection pairs — lockstep
    /// transmitter/receiver couples hopping the 37 data channels on their
    /// own schedules (see [`BackgroundTx`]). Pairs are laid out on a 12 m
    /// grid away from the rig triangle and are added to the world strictly
    /// *after* every classic node, so `background_pairs(0)` (the default)
    /// builds a world byte-identical to not calling this at all.
    pub fn background_pairs(mut self, n: usize) -> Self {
        self.background_pairs = n;
        self
    }

    /// Enables the medium's per-packet [`ble_telemetry::DeliveryTracker`]
    /// with row capacity `capacity` before any node bootstraps, so the
    /// run-wide scheduling totals cover every transmission in the scene.
    pub fn delivery_tracker(mut self, capacity: usize) -> Self {
        self.delivery_tracker = Some(capacity);
        self
    }

    /// Selects the victim device.
    pub fn device(mut self, kind: DeviceKind) -> Self {
        self.kind = kind;
        self
    }

    /// Overrides the victim node's label (defaults to the device kind's).
    pub fn victim_label(mut self, label: &'static str) -> Self {
        self.victim_label = Some(label);
        self
    }

    /// Connection hop interval (×1.25 ms).
    pub fn hop_interval(mut self, hop: u16) -> Self {
        self.hop_interval = hop;
        self
    }

    /// Central distance from the victim, in metres.
    pub fn central_distance(mut self, metres: f64) -> Self {
        self.central_distance = metres;
        self
    }

    /// Attacker distance from the victim, in metres (placed on the y axis,
    /// the side chosen by the preset).
    pub fn attacker_distance(mut self, metres: f64) -> Self {
        self.attacker_distance = metres;
        self
    }

    /// Places the attacker at an arbitrary position, overriding the
    /// distance/side placement.
    pub fn attacker_position(mut self, pos: Position) -> Self {
        self.attacker_pos_override = Some(pos);
        self
    }

    /// Attacker transmit power in dBm.
    pub fn attacker_tx_dbm(mut self, dbm: f64) -> Self {
        self.attacker_tx_dbm = dbm;
        self
    }

    /// Override of the attacker's anchor-timestamp noise (µs).
    pub fn attacker_anchor_noise_us(mut self, us: f64) -> Self {
        self.attacker_anchor_noise_us = Some(us);
        self
    }

    /// Override of the attacker's resynchronisation policy (campaign
    /// length, backoff, retry budget). The default policy never leaves its
    /// first campaign in a healthy run; tighter policies make impaired
    /// runs give up (and their trials end) sooner.
    pub fn attacker_resync(mut self, policy: ResyncPolicy) -> Self {
        self.attacker_resync = Some(policy);
        self
    }

    /// Removes the attacker from the scene.
    pub fn no_attacker(mut self) -> Self {
        self.with_attacker = false;
        self
    }

    /// Victim sleep-clock accuracy bound (ppm).
    pub fn victim_sca_ppm(mut self, ppm: f64) -> Self {
        self.victim_sca_ppm = ppm;
        self
    }

    /// Attacker sleep-clock accuracy bound (ppm).
    pub fn attacker_sca_ppm(mut self, ppm: f64) -> Self {
        self.attacker_sca_ppm = ppm;
        self
    }

    /// Scale on the victim slave's window widening (§VIII countermeasure 1;
    /// 1.0 = spec behaviour).
    pub fn widening_scale(mut self, scale: f64) -> Self {
        self.widening_scale = scale;
        self
    }

    /// PHY mode for every node (LE 1M in all paper experiments).
    pub fn phy(mut self, phy: PhyMode) -> Self {
        self.phy = phy;
        self
    }

    /// Adds the paper's wall between the attacker and the room: a segment
    /// at y = −0.5 m spanning x = ±100 m with this attenuation (dB).
    pub fn wall_db(mut self, db: f64) -> Self {
        self.wall = Some(Wall::new(
            Position::new(-100.0, -0.5),
            Position::new(100.0, -0.5),
            db,
        ));
        self
    }

    /// Adds an arbitrary wall segment.
    pub fn wall(mut self, wall: Wall) -> Self {
        self.wall = Some(wall);
        self
    }

    /// Selects the telemetry capture mode (default: off).
    pub fn telemetry(mut self, mode: TelemetryMode) -> Self {
        self.telemetry = mode;
        self
    }

    /// Installs the wall-clock source for span telemetry. The harness
    /// injects its quarantined monotonic reader here; scenario and protocol
    /// code never touch `std::time` themselves (lint rule R8). Without a
    /// clock, spans still measure simulated time and report 0 wall-clock.
    pub fn span_clock(mut self, clock: fn() -> u64) -> Self {
        self.span_clock = Some(clock);
        self
    }

    /// Installs a deterministic [`FaultPlan`] into the built world's radio
    /// medium. The plan draws only from its own seed; an empty plan (and
    /// `None`, the default) leaves the simulation byte-identical to a world
    /// built without this knob.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Builds the world: forks the scenario RNG, constructs the devices,
    /// inserts the nodes and starts them — always in the same order, so a
    /// given configuration and seed reproduce the identical simulation.
    pub fn build(self) -> Scenario {
        let mut rng = SimRng::seed_from(self.seed);
        let mut env = self
            .environment
            .clone()
            .unwrap_or_else(Environment::indoor_default);
        if let Some(wall) = self.wall {
            env = env.with_wall(wall);
        }
        let world_rng = match self.world_seed {
            Some(ws) => SimRng::seed_from(ws),
            None => rng.fork(),
        };
        let mut world = World::new(env, world_rng);
        if let Some(capacity) = self.delivery_tracker {
            world.enable_delivery_tracker(capacity);
        }

        let (victim, victim_addr): (Box<dyn Node>, DeviceAddress) = {
            let device_rng = rng.fork();
            match self.kind {
                DeviceKind::Lightbulb => {
                    let mut d = Lightbulb::new(self.kind.addr_byte(), device_rng);
                    d.ll.set_widening_scale(self.widening_scale);
                    let addr = d.ll.address();
                    (Box::new(d), addr)
                }
                DeviceKind::Keyfob => {
                    let mut d = Keyfob::new(self.kind.addr_byte(), device_rng);
                    d.ll.set_widening_scale(self.widening_scale);
                    let addr = d.ll.address();
                    (Box::new(d), addr)
                }
                DeviceKind::Smartwatch => {
                    let mut d = Smartwatch::new(self.kind.addr_byte(), device_rng);
                    d.ll.set_widening_scale(self.widening_scale);
                    let addr = d.ll.address();
                    (Box::new(d), addr)
                }
            }
        };

        let params = ConnectionParams::typical(&mut rng, self.hop_interval);
        let central = Central::new(0xA0, victim_addr, params, rng.fork());

        let attacker = self.with_attacker.then(|| {
            let mut cfg = AttackerConfig {
                target_slave: Some(victim_addr),
                ..AttackerConfig::default()
            };
            if let Some(noise) = self.attacker_anchor_noise_us {
                cfg.anchor_noise_us = noise;
            }
            if let Some(policy) = &self.attacker_resync {
                cfg.resync = policy.clone();
            }
            Attacker::new(cfg)
        });

        let clock = |sca: f64, rng: &mut SimRng| match self.clock_model {
            ClockModel::Realistic => DriftClock::realistic(sca, rng).with_jitter_us(1.0),
            ClockModel::RandomError => DriftClock::with_random_error(sca, rng).with_jitter_us(1.0),
        };

        let victim_label = self.victim_label.unwrap_or_else(|| self.kind.label());
        let victim_id = world.add_boxed_node(
            NodeConfig::new(victim_label, Position::new(0.0, 0.0))
                .with_phy(self.phy)
                .with_clock(clock(self.victim_sca_ppm, &mut rng)),
            victim,
        );
        let mut central_cfg = NodeConfig::new("phone", Position::new(self.central_distance, 0.0))
            .with_phy(self.phy)
            .with_clock(clock(self.victim_sca_ppm, &mut rng));
        if self.extra_peripherals > 0 {
            // Multi-link Central: several Link Layers share one radio, so
            // overlapping TX/RX requests are expected contention (modelled
            // as collisions), not protocol-machine bugs.
            central_cfg = central_cfg.with_shared_radio();
        }
        let central_id = world.add_node(central_cfg, central);
        let attacker_pos = self
            .attacker_pos_override
            .unwrap_or_else(|| Position::new(0.0, self.attacker_y_sign * self.attacker_distance));
        let attacker_id = attacker.map(|attacker| {
            world.add_node(
                NodeConfig::new("attacker", attacker_pos)
                    .with_tx_power(self.attacker_tx_dbm)
                    .with_phy(self.phy)
                    .with_clock(clock(self.attacker_sca_ppm, &mut rng)),
                attacker,
            )
        });

        // Extra peripherals come strictly *after* every classic node and
        // draw — with zero extras nothing below touches `rng` or the world,
        // so single-peripheral scenes stay byte-identical to the historical
        // build order.
        let mut extra_peripheral_ids = Vec::new();
        let mut extra_peers = Vec::new();
        for k in 0..self.extra_peripherals {
            let device_rng = rng.fork();
            let addr_seed = 0xD0 + k as u8;
            let (node, addr): (Box<dyn Node>, DeviceAddress) = match self.kind {
                DeviceKind::Lightbulb => {
                    let mut d = Lightbulb::new(addr_seed, device_rng);
                    d.ll.set_widening_scale(self.widening_scale);
                    let addr = d.ll.address();
                    (Box::new(d), addr)
                }
                DeviceKind::Keyfob => {
                    let mut d = Keyfob::new(addr_seed, device_rng);
                    d.ll.set_widening_scale(self.widening_scale);
                    let addr = d.ll.address();
                    (Box::new(d), addr)
                }
                DeviceKind::Smartwatch => {
                    let mut d = Smartwatch::new(addr_seed, device_rng);
                    d.ll.set_widening_scale(self.widening_scale);
                    let addr = d.ll.address();
                    (Box::new(d), addr)
                }
            };
            let params = ConnectionParams::typical(&mut rng, self.hop_interval);
            let id = world.add_boxed_node(
                NodeConfig::new(
                    format!("peer{}", k + 1),
                    Position::new(0.0, 0.6 * (k + 1) as f64),
                )
                .with_phy(self.phy)
                .with_clock(clock(self.victim_sca_ppm, &mut rng)),
                node,
            );
            extra_peripheral_ids.push(id);
            extra_peers.push((addr, params));
        }
        let mut extra_conn_handles = Vec::new();
        if !extra_peers.is_empty() {
            if let Some(central) = world.node_mut::<Central>(central_id) {
                for (addr, params) in &extra_peers {
                    extra_conn_handles.extend(central.add_peer(*addr, *params));
                }
            }
        }

        // Background pairs come last of all nodes and draw from a single
        // fork taken only when pairs were requested, so scenes without them
        // stay byte-identical to the historical build order.
        let mut background_ids = Vec::new();
        if self.background_pairs > 0 {
            let mut bg_rng = rng.fork();
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let cols = (self.background_pairs as f64).sqrt().ceil() as usize;
            for k in 0..self.background_pairs {
                let period_us = 7_500 + bg_rng.below(7_500);
                let schedule = BackgroundSchedule {
                    aa: AccessAddress::new(
                        0xB000_0000 + u32::try_from(k).expect("pair count fits u32"),
                    ),
                    crc_init: 0x0B_0B00 + u32::try_from(k).expect("pair count fits u32"),
                    start_channel: u8::try_from(bg_rng.below(37)).expect("channel index fits u8"),
                    hop: u8::try_from(1 + bg_rng.below(36)).expect("hop fits u8"),
                    period: Duration::from_micros(period_us),
                    phase: Duration::from_micros(period_us + bg_rng.below(period_us)),
                };
                // 12 m grid starting well outside the rig triangle; the
                // pair's own link is a fixed 1 m hop.
                let x = 8.0 + (k % cols.max(1)) as f64 * 12.0;
                let y = 8.0 + (k / cols.max(1)) as f64 * 12.0;
                let tx_id = world.add_node(
                    NodeConfig::new(format!("bgtx{k}"), Position::new(x, y)),
                    BackgroundTx::new(schedule),
                );
                let rx_id = world.add_node(
                    NodeConfig::new(format!("bgrx{k}"), Position::new(x + 1.0, y)),
                    BackgroundRx::new(schedule),
                );
                background_ids.push((tx_id, rx_id));
            }
        }

        // Telemetry attaches *before* bootstrap so sinks observe the nodes'
        // first actions — in particular the spans opened in `on_start`
        // hooks (the attacker's initial scan campaign). Sinks are
        // observation-only: attaching them earlier cannot perturb the
        // simulation's RNG streams or schedule.
        if let Some(clock) = self.span_clock {
            world.set_span_clock(clock);
        }
        let mut telemetry_downgraded = false;
        let metrics = match &self.telemetry {
            TelemetryMode::Off => None,
            TelemetryMode::Metrics => Some(attach_metrics(&mut world)),
            TelemetryMode::Jsonl(path) => {
                match JsonlSink::create(path) {
                    Ok(sink) => world.add_telemetry_sink(Box::new(sink)),
                    Err(err) => {
                        telemetry_downgraded = true;
                        eprintln!(
                            "warning: cannot write JSONL telemetry to {}: {err}",
                            path.display()
                        );
                    }
                }
                Some(attach_metrics(&mut world))
            }
        };

        world.start(victim_id);
        world.start(central_id);
        if let Some(id) = attacker_id {
            world.start(id);
        }
        for id in &extra_peripheral_ids {
            world.start(*id);
        }
        for (tx_id, rx_id) in &background_ids {
            // Receiver first: its window-opening tick leads the
            // transmitter's within every period.
            world.start(*rx_id);
            world.start(*tx_id);
        }

        // After every node exists (drift excursions resolve labels here) and
        // after bootstrap, so same-instant fault markers sort behind the
        // nodes' first timers. The plan carries its own RNG seed, so the
        // frozen fork order above is untouched.
        if let Some(plan) = self.faults {
            world.install_faults(plan);
        }

        Scenario {
            world,
            kind: self.kind,
            victim_id,
            central_id,
            attacker_id,
            victim_addr,
            attacker_pos,
            metrics,
            telemetry_downgraded,
            extra_peripheral_ids,
            extra_conn_handles,
            background_ids,
        }
    }
}

fn attach_metrics(world: &mut World) -> SharedRegistry {
    let sink = MetricsSink::new();
    let registry = sink.handle();
    world.add_telemetry_sink(Box::new(sink));
    registry
}

/// A built, running scene. The [`World`] arena owns every node; the typed
/// accessors below downcast the well-known slots.
pub struct Scenario {
    /// The simulation world.
    pub world: World,
    /// Which victim device the scene stars.
    pub kind: DeviceKind,
    /// Arena id of the victim Peripheral.
    pub victim_id: NodeId,
    /// Arena id of the legitimate Central.
    pub central_id: NodeId,
    /// Arena id of the attacker, when the scene has one.
    pub attacker_id: Option<NodeId>,
    /// The victim's advertised device address.
    pub victim_addr: DeviceAddress,
    /// Where the attacker was placed (useful for co-locating MITM halves).
    pub attacker_pos: Position,
    metrics: Option<SharedRegistry>,
    /// Whether a requested JSONL telemetry sink could not be opened and the
    /// scene silently fell back to metrics only.
    pub telemetry_downgraded: bool,
    /// Arena ids of the extra peripherals added by
    /// [`ScenarioBuilder::multi_peripheral`], slot order (slot 1 first).
    pub extra_peripheral_ids: Vec<NodeId>,
    /// Central connection-slot handles of the extra peripherals, matching
    /// [`Scenario::extra_peripheral_ids`] index for index.
    pub extra_conn_handles: Vec<ConnHandle>,
    /// `(transmitter, receiver)` arena ids of the background pairs added by
    /// [`ScenarioBuilder::background_pairs`], pair order.
    pub background_ids: Vec<(NodeId, NodeId)>,
}

impl Scenario {
    /// The victim, downcast to its concrete device type.
    ///
    /// # Panics
    /// If `P` is not the victim's type.
    pub fn victim<P: std::any::Any>(&self) -> &P {
        self.world
            .node::<P>(self.victim_id)
            .expect("victim has the requested type")
    }

    /// Mutable access to the victim.
    ///
    /// # Panics
    /// If `P` is not the victim's type.
    pub fn victim_mut<P: std::any::Any>(&mut self) -> &mut P {
        self.world
            .node_mut::<P>(self.victim_id)
            .expect("victim has the requested type")
    }

    /// The legitimate Central.
    pub fn central(&self) -> &Central {
        self.world
            .node::<Central>(self.central_id)
            .expect("central slot holds a Central")
    }

    /// Mutable access to the legitimate Central.
    pub fn central_mut(&mut self) -> &mut Central {
        self.world
            .node_mut::<Central>(self.central_id)
            .expect("central slot holds a Central")
    }

    /// The attacker.
    ///
    /// # Panics
    /// If the scene was built without one.
    pub fn attacker(&self) -> &Attacker {
        let id = self.attacker_id.expect("scene has an attacker");
        self.world
            .node::<Attacker>(id)
            .expect("attacker slot holds an Attacker")
    }

    /// Mutable access to the attacker.
    ///
    /// # Panics
    /// If the scene was built without one.
    pub fn attacker_mut(&mut self) -> &mut Attacker {
        let id = self.attacker_id.expect("scene has an attacker");
        self.world
            .node_mut::<Attacker>(id)
            .expect("attacker slot holds an Attacker")
    }

    /// The shared metrics registry, when built with
    /// [`TelemetryMode::Metrics`] or [`TelemetryMode::Jsonl`].
    pub fn metrics(&self) -> Option<&SharedRegistry> {
        self.metrics.as_ref()
    }

    /// An extra peripheral (from [`ScenarioBuilder::multi_peripheral`]),
    /// downcast to its concrete device type. Index 0 is slot 1.
    ///
    /// # Panics
    /// If the index is out of range or `P` is not the device's type.
    pub fn extra_peripheral<P: std::any::Any>(&self, index: usize) -> &P {
        self.world
            .node::<P>(self.extra_peripheral_ids[index])
            .expect("extra peripheral has the requested type")
    }

    /// How many of the Central's connection slots hold a live Link Layer
    /// connection right now (1 = just the classic victim link).
    pub fn live_connections(&self) -> usize {
        self.central().live_connections()
    }

    /// `(sent, received)` frame totals summed over every background pair.
    pub fn background_frames(&self) -> (u64, u64) {
        let mut sent = 0;
        let mut received = 0;
        for (tx_id, rx_id) in &self.background_ids {
            sent += self
                .world
                .node::<BackgroundTx>(*tx_id)
                .expect("background slot holds a BackgroundTx")
                .sent;
            received += self
                .world
                .node::<BackgroundRx>(*rx_id)
                .expect("background slot holds a BackgroundRx")
                .received;
        }
        (sent, received)
    }

    /// Run-wide delivery-scheduling totals, when the scene was built with
    /// [`ScenarioBuilder::delivery_tracker`].
    pub fn delivery_totals(&self) -> Option<ble_telemetry::DeliveryTotals> {
        self.world.delivery_tracker().map(|t| t.totals())
    }

    /// Aims the attacker's sniffer at the peer behind one Central
    /// connection slot. Returns `false` — leaving the attacker untouched —
    /// for a stale handle. Call before the world runs (the sniffer restarts
    /// its campaign from scratch).
    ///
    /// # Panics
    /// If the scene was built without an attacker.
    pub fn aim_attacker_at(&mut self, handle: ConnHandle) -> bool {
        let Some(peer) = self.central().conn_manager().peer(handle) else {
            return false;
        };
        self.attacker_mut().retarget_slave(peer);
        true
    }

    /// Tears down the connection behind `handle` (Central-initiated). The
    /// owning slot re-establishes on its own, and the fresh `CONNECT_IND`
    /// gives a re-aimed attacker sniffer something to latch onto. Returns
    /// `false` for a stale handle or an already-down link.
    pub fn bounce_connection(&mut self, handle: ConnHandle) -> bool {
        self.central_mut().disconnect(handle, 0x13)
    }

    /// Runs until `want` Central slots hold live connections (bounded by
    /// `budget`). Returns whether the target was reached.
    pub fn wait_connections(&mut self, want: usize, budget: Duration) -> bool {
        let deadline = self.world.now() + budget;
        while self.world.now() < deadline {
            if self.live_connections() >= want {
                return true;
            }
            self.world.run_for(Duration::from_millis(100));
        }
        self.live_connections() >= want
    }

    /// Advances the simulation.
    pub fn run_for(&mut self, d: Duration) {
        self.world.run_for(d);
    }

    /// Current simulated time.
    pub fn now(&self) -> simkit::Instant {
        self.world.now()
    }

    /// Whether the victim's link layer currently holds a connection.
    pub fn victim_connected(&self) -> bool {
        match self.kind {
            DeviceKind::Lightbulb => self.victim::<Lightbulb>().ll.is_connected(),
            DeviceKind::Keyfob => self.victim::<Keyfob>().ll.is_connected(),
            DeviceKind::Smartwatch => self.victim::<Smartwatch>().ll.is_connected(),
        }
    }

    /// Handle of the victim's primary writable characteristic (bulb
    /// control / fob alert / watch message).
    pub fn victim_control_handle(&self) -> u16 {
        match self.kind {
            DeviceKind::Lightbulb => self.victim::<Lightbulb>().control_handle(),
            DeviceKind::Keyfob => self.victim::<Keyfob>().alert_handle(),
            DeviceKind::Smartwatch => self.victim::<Smartwatch>().message_handle(),
        }
    }

    /// Stops the victim from re-advertising after disconnection (used by
    /// hijack scenarios so the evicted slave stays evicted).
    pub fn set_victim_auto_readvertise(&mut self, value: bool) {
        match self.kind {
            DeviceKind::Lightbulb => self.victim_mut::<Lightbulb>().auto_readvertise = value,
            DeviceKind::Keyfob => self.victim_mut::<Keyfob>().auto_readvertise = value,
            DeviceKind::Smartwatch => self.victim_mut::<Smartwatch>().auto_readvertise = value,
        }
    }

    /// Runs until the connection is up and the attacker follows it with
    /// sequence state. Returns `false` on setup timeout.
    pub fn wait_synchronised(&mut self, budget: Duration) -> bool {
        let deadline = self.world.now() + budget;
        while self.world.now() < deadline {
            self.world.run_for(Duration::from_millis(100));
            let connected = self.central().ll.is_connected();
            let following = self
                .attacker()
                .connection()
                .map(|c| c.has_slave_seq())
                .unwrap_or(false);
            if connected && following {
                return true;
            }
        }
        false
    }

    /// Runs until the legitimate connection is up and the attacker follows
    /// it, then lets the sniffer settle for 400 ms (bounded wait).
    ///
    /// # Panics
    /// If the setup does not converge within the bound.
    pub fn run_until_connected(&mut self) {
        for _ in 0..100 {
            self.world.run_for(Duration::from_millis(100));
            let connected = self.central().ll.is_connected();
            let following = self.attacker().connection().is_some();
            if connected && following {
                // Give the sniffer a few events to learn the slave's
                // SN/NESN bits.
                self.world.run_for(Duration::from_millis(400));
                return;
            }
        }
        panic!(
            "setup failed: central connected={}, attacker following={}",
            self.central().ll.is_connected(),
            self.attacker().connection().is_some()
        );
    }

    /// Like [`run_until_connected`] but waits for full sequence state and
    /// settles without panicking on timeout (the §VI scenario harness).
    ///
    /// [`run_until_connected`]: Scenario::run_until_connected
    pub fn run_until_following(&mut self) {
        for _ in 0..100 {
            self.world.run_for(Duration::from_millis(100));
            let ok = self.central().ll.is_connected()
                && self
                    .attacker()
                    .connection()
                    .map(|t| t.has_slave_seq())
                    .unwrap_or(false);
            if ok {
                break;
            }
        }
        self.world.run_for(Duration::from_millis(400));
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("kind", &self.kind)
            .field("victim_id", &self.victim_id)
            .field("central_id", &self.central_id)
            .field("attacker_id", &self.attacker_id)
            .field("now", &self.world.now())
            .finish_non_exhaustive()
    }
}

/// Builds the raw LL payload of an ATT Write Request (L2CAP framed) — the
/// canonical injected frame shape used across tests and examples.
pub fn att_write_frame(handle: u16, value: Vec<u8>) -> Vec<u8> {
    let att = ble_host::att::AttPdu::WriteRequest { handle, value }.to_bytes();
    let frags = ble_host::l2cap::fragment(ble_host::l2cap::CID_ATT, &att, 27);
    assert_eq!(frags.len(), 1);
    frags.into_iter().next().expect("single L2CAP fragment").1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Scenario>();
    }

    #[test]
    fn same_seed_same_world() {
        let build = || {
            let mut sc = ScenarioBuilder::attack_rig(7).build();
            sc.run_for(Duration::from_secs(2));
            (
                sc.now(),
                sc.central().ll.is_connected(),
                sc.victim_connected(),
            )
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn legit_preset_has_no_attacker() {
        let sc = ScenarioBuilder::legit(1).build();
        assert!(sc.attacker_id.is_none());
    }

    #[test]
    fn device_kinds_expose_their_handles() {
        for kind in [
            DeviceKind::Lightbulb,
            DeviceKind::Keyfob,
            DeviceKind::Smartwatch,
        ] {
            let sc = ScenarioBuilder::legit(3).device(kind).build();
            assert!(sc.victim_control_handle() > 0);
            assert!(!sc.victim_connected());
        }
    }

    #[test]
    fn multi_peripheral_one_adds_nothing() {
        let sc = ScenarioBuilder::legit(1).multi_peripheral(1).build();
        assert!(sc.extra_peripheral_ids.is_empty());
        assert!(sc.extra_conn_handles.is_empty());
        assert_eq!(sc.central().conn_handles().len(), 1);
    }

    #[test]
    fn multi_peripheral_connects_every_slot() {
        let mut sc = ScenarioBuilder::legit(5).multi_peripheral(4).build();
        assert_eq!(sc.extra_peripheral_ids.len(), 3);
        assert_eq!(sc.extra_conn_handles.len(), 3);
        assert!(
            sc.wait_connections(4, Duration::from_secs(20)),
            "only {} of 4 connections up",
            sc.live_connections()
        );
        // Every occupied slot reports Established in the manager too.
        let central = sc.central();
        for h in central.conn_handles() {
            assert_eq!(
                central.conn_manager().state(h),
                Some(ble_host::SlotState::Established),
                "slot {h} not established"
            );
        }
    }

    #[test]
    fn background_pairs_exchange_frames_in_lockstep() {
        let mut sc = ScenarioBuilder::legit(9)
            .background_pairs(6)
            .delivery_tracker(32)
            .build();
        assert_eq!(sc.background_ids.len(), 6);
        sc.run_for(Duration::from_secs(2));
        let (sent, received) = sc.background_frames();
        assert!(sent > 0, "pairs must transmit");
        // Lockstep schedules on a 1 m link: virtually every frame lands
        // (collisions between pairs sharing an instant and channel are the
        // only loss mechanism).
        assert!(
            received * 10 >= sent * 9,
            "background pairs out of lockstep: {received} of {sent} frames"
        );
        let totals = sc.delivery_totals().expect("tracker was enabled");
        assert!(totals.tx_frames >= sent);
    }

    #[test]
    fn background_pairs_zero_is_byte_identical_to_none() {
        let run = |with_knob: bool| {
            let b = ScenarioBuilder::legit(4);
            let b = if with_knob { b.background_pairs(0) } else { b };
            let mut sc = b.build();
            sc.run_for(Duration::from_secs(2));
            (
                sc.now(),
                sc.central().ll.is_connected(),
                sc.victim_connected(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn environment_knob_replaces_the_default() {
        let sc = ScenarioBuilder::legit(2)
            .environment(ble_phy::Environment::dense_hall())
            .build();
        // dense_hall's exponent (3.4) is hotter than indoor (1.8).
        assert!(sc.world.env().path_loss_exponent > 3.0);
    }

    #[test]
    fn att_write_frame_is_l2cap_framed() {
        let f = att_write_frame(6, vec![1, 2, 3]);
        // 4 L2CAP header + 3 ATT write header + 3 value bytes.
        assert_eq!(f.len(), 10);
    }
}
