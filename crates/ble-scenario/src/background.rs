//! Lightweight background "connections" for the dense-band workload.
//!
//! Experiment 6 loads the radio medium with hundreds of unrelated links
//! sharing the 37 data channels while the paper rig runs its injection.
//! Modelling each as a full Link Layer connection would dominate the
//! sweep's wall time without changing what it measures — channel
//! occupancy — so a background pair is the minimal deterministic stand-in:
//! a transmitter and a receiver sharing a hop schedule (start channel, hop
//! increment, period, phase), exactly like a BLE connection's channel
//! sequence with the protocol machine stripped away.
//!
//! The pair stays in lockstep by construction: both nodes run fixed-period
//! timers on drift-free clocks, the receiver's tick leading the
//! transmitter's by [`RX_LEAD`] so its window is already open when the
//! frame starts. A frame (22-byte payload, ~240 µs on air at LE 1M) always
//! fits inside the shortest period.

use ble_phy::{
    AccessAddress, AccessFilter, Channel, NodeCtx, RadioEvent, RadioListener, RawFrame, TimerKey,
};
use simkit::Duration;

/// How far the receiver's tick leads the transmitter's within each period.
pub const RX_LEAD: Duration = Duration::from_micros(150);

/// The shared hop schedule of one background pair.
#[derive(Debug, Clone, Copy)]
pub struct BackgroundSchedule {
    /// Access address both ends use (unique per pair).
    pub aa: AccessAddress,
    /// CRC init shared by the pair.
    pub crc_init: u32,
    /// First data-channel index (0..37).
    pub start_channel: u8,
    /// Channel increment per period; 37 is prime, so any 1..=36 increment
    /// walks the whole band.
    pub hop: u8,
    /// Tick period (one frame per period).
    pub period: Duration,
    /// Offset of the pair's first transmitter tick from world start.
    pub phase: Duration,
}

/// Background transmitter: one frame per period on the scheduled channel.
#[derive(Debug)]
pub struct BackgroundTx {
    schedule: BackgroundSchedule,
    channel: u8,
    /// Frames put on the air so far.
    pub sent: u64,
}

impl BackgroundTx {
    /// A transmitter at the start of its schedule.
    pub fn new(schedule: BackgroundSchedule) -> Self {
        BackgroundTx {
            schedule,
            channel: schedule.start_channel,
            sent: 0,
        }
    }
}

impl RadioListener for BackgroundTx {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer_local(self.schedule.phase, TimerKey(1));
    }

    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        if let RadioEvent::Timer { .. } = event {
            if !ctx.is_transmitting() {
                let frame = RawFrame::new(self.schedule.aa, vec![0x42; 22], self.schedule.crc_init);
                ctx.transmit(Channel::data_wrapped(self.channel), frame);
                self.sent += 1;
            }
            self.channel = (self.channel + self.schedule.hop) % 37;
            ctx.set_timer_local(self.schedule.period, TimerKey(1));
        }
    }
}

/// Background receiver: opens its window just before the paired
/// transmitter's tick, on the same scheduled channel.
#[derive(Debug)]
pub struct BackgroundRx {
    schedule: BackgroundSchedule,
    channel: u8,
    /// CRC-valid frames received so far.
    pub received: u64,
}

impl BackgroundRx {
    /// A receiver at the start of its schedule.
    pub fn new(schedule: BackgroundSchedule) -> Self {
        BackgroundRx {
            schedule,
            channel: schedule.start_channel,
            received: 0,
        }
    }
}

impl RadioListener for BackgroundRx {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        // phase >= period > RX_LEAD, so the lead never underflows.
        ctx.set_timer_local(self.schedule.phase - RX_LEAD, TimerKey(1));
    }

    fn on_event(&mut self, ctx: &mut NodeCtx<'_>, event: RadioEvent) {
        match event {
            RadioEvent::Timer { .. } => {
                ctx.start_rx(
                    Channel::data_wrapped(self.channel),
                    AccessFilter::One(self.schedule.aa),
                    self.schedule.crc_init,
                );
                self.channel = (self.channel + self.schedule.hop) % 37;
                ctx.set_timer_local(self.schedule.period, TimerKey(1));
            }
            RadioEvent::FrameReceived(frame) if frame.crc_ok => {
                self.received += 1;
            }
            _ => {}
        }
    }
}
