//! Deterministic fault-injection plans for the radio medium.
//!
//! A [`FaultPlan`] is a declarative, fully pre-computed description of the
//! channel impairments one simulation run should suffer: interference
//! bursts on chosen channels (WiFi-coexistence style), per-frame
//! loss/corruption probability windows, RSSI fading episodes, and transient
//! clock-drift excursions on named endpoints. The plan is *data only* —
//! the PHY layer interprets it — which keeps this crate protocol-agnostic.
//!
//! # Determinism rules
//!
//! 1. A plan carries its **own RNG seed** ([`FaultPlan::seed`]). The fault
//!    layer must draw loss/corruption decisions from a generator seeded
//!    with it and must never touch the world or node RNG streams, so that
//!    installing a plan cannot perturb an unrelated part of the simulation.
//! 2. An **empty plan is a true no-op**: no events scheduled, no random
//!    draws, no allocations on the delivery hot path. Running with
//!    `FaultPlan::default()` must be byte-identical to not installing a
//!    plan at all.
//! 3. All episode boundaries are expressed as absolute [`Instant`]s so the
//!    same plan replayed against the same world seed yields the same
//!    impairment schedule, byte for byte.
//!
//! # Example
//!
//! ```
//! use simkit::{Duration, FaultPlan, Instant, InterferenceBurst};
//!
//! let plan = FaultPlan::seeded(7).with_burst(InterferenceBurst::duty_cycle(
//!     17,
//!     Instant::ZERO,
//!     Duration::from_secs(10),
//!     Duration::from_millis(50),
//!     0.25,
//!     -30.0,
//! ));
//! assert!(!plan.is_empty());
//! // 25% of a 50 ms period is jammed.
//! let window = plan.bursts[0];
//! assert_eq!(window.on_time, Duration::from_micros(12_500));
//! ```

use crate::time::{Duration, Instant};

/// A periodic burst of wideband interference on one channel.
///
/// Models a WiFi-coexistence style jammer: starting at `first`, the channel
/// is blanketed with `power_dbm` noise for `on_time` out of every `period`,
/// `repeats` times in total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterferenceBurst {
    /// Channel index (0–39) the burst lands on.
    pub channel: u8,
    /// Start of the first burst window.
    pub first: Instant,
    /// Repetition period. Must be ≥ `on_time`; a zero period means a
    /// single, non-repeating burst.
    pub period: Duration,
    /// How long each burst window lasts.
    pub on_time: Duration,
    /// Number of burst windows (1 = a single burst).
    pub repeats: u32,
    /// Received interference power at the victim, in dBm.
    pub power_dbm: f64,
}

impl InterferenceBurst {
    /// A periodic burst train covering `span` from `first`, with the given
    /// repetition `period` and `duty` cycle (fraction of each period that
    /// is jammed, clamped to `0.0..=1.0`).
    pub fn duty_cycle(
        channel: u8,
        first: Instant,
        span: Duration,
        period: Duration,
        duty: f64,
        power_dbm: f64,
    ) -> InterferenceBurst {
        let duty = duty.clamp(0.0, 1.0);
        let on_time = period.mul_f64(duty);
        let repeats = if period.is_zero() {
            1
        } else {
            let n = span.as_nanos().div_ceil(period.as_nanos().max(1));
            u32::try_from(n).unwrap_or(u32::MAX).max(1)
        };
        InterferenceBurst {
            channel,
            first,
            period,
            on_time,
            repeats,
            power_dbm,
        }
    }

    /// Start of burst window `k` (0-based), if `k < repeats`.
    pub fn window_start(&self, k: u32) -> Option<Instant> {
        if k >= self.repeats {
            return None;
        }
        self.period
            .checked_mul(u64::from(k))
            .and_then(|off| self.first.checked_add(off))
    }

    /// Total overlap between `[start, end]` and this burst's on-windows.
    ///
    /// Purely arithmetic — no state, no RNG — so the PHY can evaluate it
    /// per received frame without scheduling anything.
    pub fn overlap_with(&self, start: Instant, end: Instant) -> Duration {
        if end <= start || self.on_time.is_zero() {
            return Duration::ZERO;
        }
        // First candidate window: the one whose start is at or before
        // `start` (or window 0 when `start` precedes the train).
        let k0 = match start.checked_duration_since(self.first) {
            Some(elapsed) if !self.period.is_zero() => {
                u32::try_from(elapsed.as_nanos() / self.period.as_nanos()).unwrap_or(u32::MAX)
            }
            _ => 0,
        };
        let mut total = Duration::ZERO;
        let mut k = k0;
        while let Some(w_start) = self.window_start(k) {
            if w_start >= end {
                break;
            }
            let w_end = w_start.saturating_add(self.on_time);
            let lo = w_start.max(start);
            let hi = w_end.min(end);
            if let Some(overlap) = hi.checked_duration_since(lo) {
                total = total.saturating_add(overlap);
            }
            if self.period.is_zero() {
                break;
            }
            k = match k.checked_add(1) {
                Some(k) => k,
                None => break,
            };
        }
        total
    }
}

/// A window of per-frame loss and corruption probability.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameLossRule {
    /// Window start (inclusive).
    pub from: Instant,
    /// Window end (exclusive).
    pub until: Instant,
    /// Channel the rule applies to; `None` means every channel.
    pub channel: Option<u8>,
    /// Probability that a frame inside the window never achieves sync at
    /// the receiver (dropped before delivery).
    pub loss_prob: f64,
    /// Probability that a frame inside the window is delivered with bit
    /// errors (fails CRC at the receiver).
    pub corrupt_prob: f64,
}

impl FrameLossRule {
    /// Whether the rule covers a frame on `channel` at `now`.
    pub fn applies(&self, now: Instant, channel: u8) -> bool {
        self.from <= now && now < self.until && self.channel.is_none_or(|c| c == channel)
    }
}

/// A deep-fade episode: extra path loss on every link while active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FadingEpisode {
    /// Episode start (inclusive).
    pub from: Instant,
    /// Episode end (exclusive).
    pub until: Instant,
    /// Extra attenuation applied to every received frame, in dB.
    pub extra_loss_db: f64,
}

impl FadingEpisode {
    /// Whether the episode is active at `now`.
    pub fn active_at(&self, now: Instant) -> bool {
        self.from <= now && now < self.until
    }
}

/// A transient clock-drift excursion on one named endpoint.
///
/// While active, every locally-timed delay on the node whose label matches
/// `node_label` is stretched by an extra `extra_ppm` parts-per-million on
/// top of its modelled sleep-clock error (negative values run the clock
/// fast).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftExcursion {
    /// Label of the affected node (as passed to the node config).
    pub node_label: String,
    /// Excursion start (inclusive).
    pub from: Instant,
    /// Excursion end (exclusive).
    pub until: Instant,
    /// Extra clock error in parts per million.
    pub extra_ppm: f64,
}

impl DriftExcursion {
    /// Whether the excursion is active at `now`.
    pub fn active_at(&self, now: Instant) -> bool {
        self.from <= now && now < self.until
    }
}

/// A complete, deterministic fault-injection plan.
///
/// The default plan is empty and is guaranteed to be a no-op when
/// installed (see the module docs for the determinism rules).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the fault layer's private RNG (loss/corruption draws).
    pub seed: u64,
    /// Interference burst trains.
    pub bursts: Vec<InterferenceBurst>,
    /// Frame loss/corruption probability windows.
    pub losses: Vec<FrameLossRule>,
    /// Deep-fade episodes.
    pub fading: Vec<FadingEpisode>,
    /// Clock-drift excursions.
    pub drift: Vec<DriftExcursion>,
}

impl FaultPlan {
    /// An empty plan with the given fault-RNG seed.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.bursts.is_empty()
            && self.losses.is_empty()
            && self.fading.is_empty()
            && self.drift.is_empty()
    }

    /// Adds an interference burst train.
    pub fn with_burst(mut self, burst: InterferenceBurst) -> FaultPlan {
        self.bursts.push(burst);
        self
    }

    /// Adds a frame loss/corruption window.
    pub fn with_loss(mut self, rule: FrameLossRule) -> FaultPlan {
        self.losses.push(rule);
        self
    }

    /// Adds a deep-fade episode.
    pub fn with_fading(mut self, episode: FadingEpisode) -> FaultPlan {
        self.fading.push(episode);
        self
    }

    /// Adds a clock-drift excursion.
    pub fn with_drift(mut self, excursion: DriftExcursion) -> FaultPlan {
        self.drift.push(excursion);
        self
    }

    /// Total extra attenuation from fading episodes active at `now`, in dB.
    pub fn fading_db_at(&self, now: Instant) -> f64 {
        self.fading
            .iter()
            .filter(|e| e.active_at(now))
            .map(|e| e.extra_loss_db)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
        assert!(FaultPlan::seeded(99).is_empty());
        let plan = FaultPlan::seeded(1).with_fading(FadingEpisode {
            from: Instant::ZERO,
            until: Instant::from_micros(10),
            extra_loss_db: 20.0,
        });
        assert!(!plan.is_empty());
    }

    #[test]
    fn duty_cycle_constructor_covers_the_span() {
        let b = InterferenceBurst::duty_cycle(
            0,
            Instant::ZERO,
            Duration::from_secs(1),
            Duration::from_millis(100),
            0.5,
            -40.0,
        );
        assert_eq!(b.repeats, 10);
        assert_eq!(b.on_time, Duration::from_millis(50));
        // Duty is clamped.
        let b = InterferenceBurst::duty_cycle(
            0,
            Instant::ZERO,
            Duration::from_millis(100),
            Duration::from_millis(100),
            3.0,
            -40.0,
        );
        assert_eq!(b.on_time, Duration::from_millis(100));
    }

    #[test]
    fn burst_overlap_is_exact() {
        let b = InterferenceBurst {
            channel: 3,
            first: Instant::from_micros(1_000),
            period: Duration::from_micros(1_000),
            on_time: Duration::from_micros(200),
            repeats: 3,
            power_dbm: -30.0,
        };
        // Fully inside the first on-window.
        assert_eq!(
            b.overlap_with(Instant::from_micros(1_050), Instant::from_micros(1_150)),
            Duration::from_micros(100)
        );
        // Straddling the end of the first on-window.
        assert_eq!(
            b.overlap_with(Instant::from_micros(1_150), Instant::from_micros(1_400)),
            Duration::from_micros(50)
        );
        // Before the train and after it: nothing.
        assert_eq!(
            b.overlap_with(Instant::ZERO, Instant::from_micros(999)),
            Duration::ZERO
        );
        assert_eq!(
            b.overlap_with(Instant::from_micros(10_000), Instant::from_micros(11_000)),
            Duration::ZERO
        );
        // A window spanning two periods accumulates both on-windows.
        assert_eq!(
            b.overlap_with(Instant::from_micros(1_000), Instant::from_micros(3_000)),
            Duration::from_micros(400)
        );
        // `repeats` bounds the train: window 3 does not exist.
        assert_eq!(b.window_start(3), None);
        assert_eq!(
            b.overlap_with(Instant::from_micros(4_000), Instant::from_micros(5_000)),
            Duration::ZERO
        );
    }

    #[test]
    fn single_shot_burst_has_zero_period() {
        let b = InterferenceBurst {
            channel: 0,
            first: Instant::from_micros(100),
            period: Duration::ZERO,
            on_time: Duration::from_micros(50),
            repeats: 1,
            power_dbm: -20.0,
        };
        assert_eq!(
            b.overlap_with(Instant::ZERO, Instant::from_micros(1_000)),
            Duration::from_micros(50)
        );
    }

    #[test]
    fn loss_rule_channel_filter() {
        let rule = FrameLossRule {
            from: Instant::from_micros(10),
            until: Instant::from_micros(20),
            channel: Some(5),
            loss_prob: 0.5,
            corrupt_prob: 0.0,
        };
        assert!(rule.applies(Instant::from_micros(10), 5));
        assert!(!rule.applies(Instant::from_micros(10), 6));
        assert!(!rule.applies(Instant::from_micros(20), 5));
        let any = FrameLossRule {
            channel: None,
            ..rule
        };
        assert!(any.applies(Instant::from_micros(15), 37));
    }

    #[test]
    fn fading_sums_active_episodes() {
        let plan = FaultPlan::seeded(0)
            .with_fading(FadingEpisode {
                from: Instant::from_micros(0),
                until: Instant::from_micros(100),
                extra_loss_db: 10.0,
            })
            .with_fading(FadingEpisode {
                from: Instant::from_micros(50),
                until: Instant::from_micros(150),
                extra_loss_db: 5.0,
            });
        assert_eq!(plan.fading_db_at(Instant::from_micros(10)), 10.0);
        assert_eq!(plan.fading_db_at(Instant::from_micros(60)), 15.0);
        assert_eq!(plan.fading_db_at(Instant::from_micros(120)), 5.0);
        assert_eq!(plan.fading_db_at(Instant::from_micros(200)), 0.0);
    }

    #[test]
    fn drift_excursion_window() {
        let d = DriftExcursion {
            node_label: "phone".into(),
            from: Instant::from_micros(5),
            until: Instant::from_micros(9),
            extra_ppm: 300.0,
        };
        assert!(!d.active_at(Instant::from_micros(4)));
        assert!(d.active_at(Instant::from_micros(5)));
        assert!(!d.active_at(Instant::from_micros(9)));
    }
}
