//! Cancellable discrete-event queue.

use std::cmp::Ordering;
#[allow(clippy::disallowed_types)]
// xtask-allow: R7 — membership-only tombstone set behind the deterministic IdHasher below; iteration order is never observed
use std::collections::{BinaryHeap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

use crate::time::Instant;

/// Identifier of a scheduled event, usable to cancel it before it fires.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

/// Identity hasher for [`EventId`] tombstones. Ids are already unique
/// sequence numbers, and the tombstone lookup sits on the hot `pop` path —
/// SipHash would cost more than the heap operation it guards.
#[derive(Default)]
struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only reached if a caller hashes something other than the u64 id;
        // fold bytes so the hasher still works, if slowly.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

#[allow(clippy::disallowed_types)]
// xtask-allow: R7 — tombstones are only inserted/probed/removed by unique EventId; nothing ever iterates the set
type IdTombstones = HashSet<EventId, BuildHasherDefault<IdHasher>>;

struct Entry<E> {
    at: Instant,
    id: EventId,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap and we want the earliest
        // event first. Ties break by insertion order for determinism.
        other.at.cmp(&self.at).then_with(|| other.id.cmp(&self.id))
    }
}

/// A min-heap of timestamped events with stable FIFO ordering for ties and
/// O(log n) cancellation via tombstones.
///
/// The queue tracks the current simulation time: popping an event advances
/// `now` to that event's timestamp, and scheduling in the past is clamped to
/// `now` (events never fire retroactively).
///
/// # Example
///
/// ```
/// use simkit::{Duration, EventQueue};
///
/// let mut q = EventQueue::new();
/// let a = q.schedule_after(Duration::from_micros(10), 'a');
/// let _b = q.schedule_after(Duration::from_micros(5), 'b');
/// q.cancel(a);
/// let fired: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(fired, vec!['b']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: IdTombstones,
    next_id: u64,
    now: Instant,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for Entry<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry")
            .field("at", &self.at)
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with `now` at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: IdTombstones::default(),
            next_id: 0,
            now: Instant::ZERO,
        }
    }

    /// The current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Schedules `event` at absolute time `at`. Times in the past are clamped
    /// to `now` so the event still fires (immediately), preserving causality.
    pub fn schedule_at(&mut self, at: Instant, event: E) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.heap.push(Entry {
            at: at.max(self.now),
            id,
            event,
        });
        id
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_after(&mut self, delay: crate::Duration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a harmless no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Removes and returns the earliest pending event, advancing `now` to its
    /// timestamp. Cancelled events are skipped silently.
    pub fn pop(&mut self) -> Option<(Instant, E)> {
        while let Some(entry) = self.heap.pop() {
            if !self.cancelled.is_empty() && self.cancelled.remove(&entry.id) {
                continue;
            }
            debug_assert!(entry.at >= self.now, "event queue time went backwards");
            self.now = entry.at;
            return Some((entry.at, entry.event));
        }
        None
    }

    /// The timestamp of the earliest live pending event, if any.
    pub fn peek_time(&mut self) -> Option<Instant> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.id) {
                let entry = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&entry.id);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Advances `now` to `t` without firing anything. Intended for "run
    /// until wall-clock T" simulation loops after the last event before `T`
    /// has been popped.
    ///
    /// # Panics
    ///
    /// Panics if a live event is pending earlier than `t`.
    pub fn advance_to(&mut self, t: Instant) {
        if t <= self.now {
            return;
        }
        if let Some(next) = self.peek_time() {
            assert!(
                next >= t,
                "advance_to({t:?}) would skip a pending event at {next:?}"
            );
        }
        self.now = t;
    }

    /// Number of live pending events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Instant::from_micros(30), 3);
        q.schedule_at(Instant::from_micros(10), 1);
        q.schedule_at(Instant::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = Instant::from_micros(5);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(Instant::from_micros(42), ());
        assert_eq!(q.now(), Instant::ZERO);
        q.pop();
        assert_eq!(q.now(), Instant::from_micros(42));
    }

    #[test]
    fn past_events_are_clamped_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(Instant::from_micros(100), "later");
        q.pop();
        q.schedule_at(Instant::from_micros(1), "past");
        let (at, ev) = q.pop().expect("event fires");
        assert_eq!(ev, "past");
        assert_eq!(at, Instant::from_micros(100));
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule_after(Duration::from_micros(1), "a");
        q.schedule_after(Duration::from_micros(2), "b");
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule_after(Duration::ZERO, "a");
        assert!(q.pop().is_some());
        q.cancel(a);
        q.schedule_after(Duration::ZERO, "b");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(Instant::from_micros(1), "a");
        q.schedule_at(Instant::from_micros(7), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Instant::from_micros(7)));
        assert!(!q.is_empty());
    }
}
