//! Bounded exponential backoff for retry loops.
//!
//! Deterministic by construction: no jitter, no wall clock. Consumers that
//! want randomised spacing should add jitter from their own seeded RNG so
//! the schedule stays reproducible.
//!
//! # Example
//!
//! ```
//! use simkit::{Duration, ExponentialBackoff};
//!
//! let mut b = ExponentialBackoff::new(Duration::from_millis(100), Duration::from_secs(1), 4);
//! assert_eq!(b.next_delay(), Some(Duration::from_millis(100)));
//! assert_eq!(b.next_delay(), Some(Duration::from_millis(200)));
//! assert_eq!(b.next_delay(), Some(Duration::from_millis(400)));
//! assert_eq!(b.next_delay(), Some(Duration::from_millis(800)));
//! assert_eq!(b.next_delay(), None); // retries exhausted
//! b.reset();
//! assert_eq!(b.next_delay(), Some(Duration::from_millis(100)));
//! ```

use crate::time::Duration;

/// A bounded exponential-backoff schedule: `base`, `2·base`, `4·base`, …
/// capped at `cap`, for at most `max_retries` attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExponentialBackoff {
    base: Duration,
    cap: Duration,
    max_retries: u32,
    attempt: u32,
}

impl ExponentialBackoff {
    /// Creates a schedule of at most `max_retries` delays starting at
    /// `base` and doubling up to `cap`.
    pub fn new(base: Duration, cap: Duration, max_retries: u32) -> ExponentialBackoff {
        ExponentialBackoff {
            base,
            cap,
            max_retries,
            attempt: 0,
        }
    }

    /// The delay before the next retry, or `None` once the retry budget is
    /// spent. Each call consumes one attempt.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.max_retries {
            return None;
        }
        let factor = 1u64.checked_shl(self.attempt).unwrap_or(u64::MAX);
        self.attempt = self.attempt.saturating_add(1);
        Some(self.base.saturating_mul(factor).min(self.cap))
    }

    /// Attempts consumed so far.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Whether the retry budget is spent.
    pub fn exhausted(&self) -> bool {
        self.attempt >= self.max_retries
    }

    /// Returns the schedule to its initial state (e.g. after a success).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_and_cap() {
        let mut b =
            ExponentialBackoff::new(Duration::from_millis(250), Duration::from_millis(900), 5);
        let delays: Vec<_> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_eq!(
            delays,
            vec![
                Duration::from_millis(250),
                Duration::from_millis(500),
                Duration::from_millis(900),
                Duration::from_millis(900),
                Duration::from_millis(900),
            ]
        );
        assert!(b.exhausted());
        assert_eq!(b.attempt(), 5);
    }

    #[test]
    fn reset_restores_the_budget() {
        let mut b = ExponentialBackoff::new(Duration::from_millis(10), Duration::from_secs(1), 1);
        assert!(b.next_delay().is_some());
        assert!(b.exhausted());
        b.reset();
        assert!(!b.exhausted());
        assert_eq!(b.next_delay(), Some(Duration::from_millis(10)));
    }

    #[test]
    fn zero_retries_is_immediately_exhausted() {
        let mut b = ExponentialBackoff::new(Duration::from_millis(10), Duration::from_secs(1), 0);
        assert!(b.exhausted());
        assert_eq!(b.next_delay(), None);
    }

    #[test]
    fn huge_attempt_counts_saturate() {
        let mut b = ExponentialBackoff::new(Duration::from_nanos(1), Duration::MAX, u32::MAX);
        for _ in 0..80 {
            assert!(b.next_delay().is_some());
        }
        // 2^79 · 1 ns saturates instead of overflowing.
        assert!(!b.exhausted());
    }
}
