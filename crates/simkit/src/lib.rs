//! Discrete-event simulation kernel used by the InjectaBLE reproduction.
//!
//! This crate is protocol-agnostic: it provides nanosecond-resolution virtual
//! time ([`Instant`], [`Duration`]), a cancellable min-heap event queue
//! ([`EventQueue`]), drifting sleep-clock models ([`DriftClock`]) and
//! deterministic randomness plumbing ([`SimRng`]).
//!
//! The Bluetooth Low Energy attack studied in the paper is fundamentally a
//! *timing race*: the window-widening mechanism of the BLE Link Layer exists
//! to compensate for sleep-clock drift, and the attacker wins by transmitting
//! at the very start of the widened receive window. Faithfully reproducing
//! the attack therefore requires an explicit model of imperfect clocks, which
//! is what this crate supplies.
//!
//! # Example
//!
//! ```
//! use simkit::{Duration, EventQueue, Instant};
//!
//! let mut queue: EventQueue<&str> = EventQueue::new();
//! queue.schedule_after(Duration::from_micros(150), "inter-frame spacing elapsed");
//! queue.schedule_after(Duration::from_micros(50), "early event");
//! let (at, ev) = queue.pop().expect("an event is pending");
//! assert_eq!(ev, "early event");
//! assert_eq!(at, Instant::ZERO + Duration::from_micros(50));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod backoff;
mod clock;
mod fault;
mod queue;
mod rng;
mod time;
mod trace;

pub use backoff::ExponentialBackoff;
pub use clock::DriftClock;
pub use fault::{DriftExcursion, FadingEpisode, FaultPlan, FrameLossRule, InterferenceBurst};
pub use queue::{EventId, EventQueue};
pub use rng::SimRng;
pub use time::{Duration, Instant};
pub use trace::{Trace, TraceRecord};
