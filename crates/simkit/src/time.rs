//! Virtual time primitives.
//!
//! All simulation time is expressed in integer nanoseconds. The BLE
//! specification phrases every Link-Layer timing rule in microseconds
//! (inter-frame spacing, window widening, connection intervals, ...); using
//! nanoseconds internally keeps sub-microsecond clock-drift arithmetic exact
//! enough without floating-point time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, measured in nanoseconds since simulation start.
///
/// # Example
///
/// ```
/// use simkit::{Duration, Instant};
/// let t0 = Instant::ZERO;
/// let t1 = t0 + Duration::from_micros(1250);
/// assert_eq!(t1.as_micros_f64(), 1250.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant(u64);

/// A span of virtual time, measured in nanoseconds. Always non-negative.
///
/// # Example
///
/// ```
/// use simkit::Duration;
/// let ifs = Duration::from_micros(150);
/// assert_eq!(ifs.as_nanos(), 150_000);
/// assert_eq!(ifs * 2, Duration::from_micros(300));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Instant {
    /// The origin of simulation time.
    pub const ZERO: Instant = Instant(0);

    /// The far end of simulation time.
    pub const MAX: Instant = Instant(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        Instant(nanos)
    }

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        Instant(micros * 1_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start, as a float (lossless for any
    /// simulation of realistic length).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The non-negative span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: Instant) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is in the future"),
        )
    }

    /// The span from `earlier` to `self`, or `None` if `earlier > self`.
    pub fn checked_duration_since(self, earlier: Instant) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration)
    }

    /// Signed difference `self - other` in nanoseconds.
    ///
    /// Useful for expressing clock *error*, which may be early (negative) or
    /// late (positive).
    pub fn signed_delta_ns(self, other: Instant) -> i64 {
        self.0 as i64 - other.0 as i64
    }

    /// `self + delta` where `delta` may be negative; saturates at time zero.
    pub fn offset_ns(self, delta: i64) -> Instant {
        if delta >= 0 {
            Instant(self.0.saturating_add(delta as u64))
        } else {
            Instant(self.0.saturating_sub(delta.unsigned_abs()))
        }
    }

    /// Saturating subtraction of a duration (clamps at time zero).
    pub fn saturating_sub(self, d: Duration) -> Instant {
        Instant(self.0.saturating_sub(d.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: Duration) -> Option<Instant> {
        self.0.checked_add(d.0).map(Instant)
    }

    /// Saturating addition of a duration (clamps at [`Instant::MAX`]).
    pub fn saturating_add(self, d: Duration) -> Instant {
        Instant(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    pub fn max(self, other: Instant) -> Instant {
        Instant(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: Instant) -> Instant {
        Instant(self.0.min(other.0))
    }
}

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// The longest representable span.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Duration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest nanosecond and clamping negative inputs to zero.
    pub fn from_micros_f64(micros: f64) -> Self {
        if micros <= 0.0 {
            Duration(0)
        } else {
            Duration((micros * 1_000.0).round() as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Microseconds as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Checked subtraction; `None` when `other > self`.
    pub fn checked_sub(self, other: Duration) -> Option<Duration> {
        self.0.checked_sub(other.0).map(Duration)
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, other: Duration) -> Option<Duration> {
        self.0.checked_add(other.0).map(Duration)
    }

    /// Saturating addition (clamps at [`Duration::MAX`]).
    pub fn saturating_add(self, other: Duration) -> Duration {
        Duration(self.0.saturating_add(other.0))
    }

    /// Checked multiplication by a scalar; `None` on overflow.
    pub fn checked_mul(self, factor: u64) -> Option<Duration> {
        self.0.checked_mul(factor).map(Duration)
    }

    /// Saturating multiplication by a scalar (clamps at [`Duration::MAX`]).
    pub fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }

    /// Multiplies by a float factor, clamping negative results to zero.
    pub fn mul_f64(self, factor: f64) -> Duration {
        Duration::from_micros_f64(self.as_micros_f64() * factor)
    }

    /// The larger of two durations.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant(
            self.0
                .checked_add(rhs.0)
                .expect("Instant + Duration overflowed virtual time"),
        )
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        Instant(
            self.0
                .checked_sub(rhs.0)
                .expect("Instant - Duration underflowed simulation time zero"),
        )
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_add(rhs.0)
                .expect("Duration + Duration overflowed"),
        )
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("Duration subtraction underflowed"),
        )
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(
            self.0
                .checked_mul(rhs)
                .expect("Duration * scalar overflowed"),
        )
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Debug for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}µs", self.as_micros_f64())
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}µs", self.as_micros_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_arithmetic_roundtrips() {
        let t = Instant::from_micros(100) + Duration::from_micros(50);
        assert_eq!(t, Instant::from_micros(150));
        assert_eq!(t - Duration::from_micros(150), Instant::ZERO);
        assert_eq!(t - Instant::from_micros(100), Duration::from_micros(50));
    }

    #[test]
    fn signed_delta_is_symmetric() {
        let a = Instant::from_micros(10);
        let b = Instant::from_micros(25);
        assert_eq!(a.signed_delta_ns(b), -15_000);
        assert_eq!(b.signed_delta_ns(a), 15_000);
    }

    #[test]
    fn offset_ns_saturates_at_zero() {
        let a = Instant::from_micros(1);
        assert_eq!(a.offset_ns(-5_000), Instant::ZERO);
        assert_eq!(a.offset_ns(5_000), Instant::from_micros(6));
    }

    #[test]
    fn duration_float_conversions() {
        let d = Duration::from_micros_f64(32.5);
        assert_eq!(d.as_nanos(), 32_500);
        assert_eq!(Duration::from_micros_f64(-1.0), Duration::ZERO);
        assert!((d.as_micros_f64() - 32.5).abs() < 1e-9);
    }

    #[test]
    fn duration_scalar_ops() {
        let hop_unit = Duration::from_micros(1250);
        assert_eq!(hop_unit * 36, Duration::from_micros(45_000));
        assert_eq!(hop_unit / 2, Duration::from_micros(625));
        assert_eq!(hop_unit.mul_f64(0.5), Duration::from_micros(625));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn instant_sub_underflow_panics() {
        let _ = Instant::from_micros(1) - Duration::from_micros(2);
    }

    #[test]
    fn checked_and_saturating_helpers() {
        let a = Instant::from_micros(5);
        assert_eq!(a.checked_duration_since(Instant::from_micros(9)), None);
        assert_eq!(a.saturating_sub(Duration::from_micros(9)), Instant::ZERO);
        assert_eq!(
            Duration::from_micros(3).saturating_sub(Duration::from_micros(9)),
            Duration::ZERO
        );
        assert_eq!(Instant::MAX.checked_add(Duration::from_nanos(1)), None);
        assert_eq!(
            Instant::MAX.saturating_add(Duration::from_nanos(1)),
            Instant::MAX
        );
        assert_eq!(Duration::MAX.checked_add(Duration::from_nanos(1)), None);
        assert_eq!(Duration::MAX.checked_mul(2), None);
        assert_eq!(Duration::MAX.saturating_mul(2), Duration::MAX);
        assert_eq!(
            Duration::from_micros(2).checked_mul(3),
            Some(Duration::from_micros(6))
        );
        assert_eq!(
            Duration::MAX.saturating_add(Duration::from_nanos(1)),
            Duration::MAX
        );
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn instant_add_overflow_panics() {
        let _ = Instant::MAX + Duration::from_nanos(1);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn duration_mul_overflow_panics() {
        let _ = Duration::MAX * 2;
    }

    #[test]
    fn debug_formats_are_nonempty() {
        assert!(!format!("{:?}", Instant::ZERO).is_empty());
        assert!(!format!("{:?}", Duration::ZERO).is_empty());
        assert_eq!(format!("{}", Duration::from_micros(150)), "150.000µs");
    }
}
