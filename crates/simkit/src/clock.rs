//! Imperfect sleep-clock model.
//!
//! BLE devices time their connection events with a low-power *sleep clock*
//! whose worst-case inaccuracy (in parts per million) is advertised in the
//! `SCA` field of `CONNECT_REQ`. The Link Layer compensates for the combined
//! master+slave inaccuracy by *window widening* — the mechanism the
//! InjectaBLE attack abuses. This module models a clock with a fixed
//! fractional frequency error plus white per-wakeup jitter.

use crate::rng::SimRng;
use crate::time::{Duration, Instant};

/// A sleep clock with a constant fractional frequency error and Gaussian
/// wake-up jitter.
///
/// `ppm_error` is the clock's *actual* frequency error; `sca_bound_ppm` is
/// the worst-case bound the device advertises (the value other devices use
/// for window widening). A real crystal rated at ±50 ppm typically runs with
/// some fixed error well inside that bound, which is why drawing the actual
/// error uniformly inside the bound ([`DriftClock::with_random_error`]) is
/// the realistic configuration.
///
/// # Example
///
/// ```
/// use simkit::{DriftClock, Duration, Instant};
/// // A clock running 50 ppm fast sees 45 ms elapse ~2.25 µs early.
/// let clock = DriftClock::new(50.0, 50.0);
/// let t = clock.true_after(Instant::ZERO, Duration::from_micros(45_000));
/// assert!(t < Instant::from_micros(45_000));
/// assert!(t > Instant::from_micros(44_995));
/// ```
#[derive(Debug, Clone)]
pub struct DriftClock {
    ppm_error: f64,
    sca_bound_ppm: f64,
    jitter_sigma_us: f64,
}

impl DriftClock {
    /// Creates a clock with a known fixed frequency error (ppm, signed:
    /// positive runs fast) and an advertised worst-case bound (ppm).
    pub fn new(ppm_error: f64, sca_bound_ppm: f64) -> Self {
        DriftClock {
            ppm_error,
            sca_bound_ppm,
            jitter_sigma_us: 0.0,
        }
    }

    /// Creates a perfectly accurate clock (useful in deterministic tests).
    pub fn ideal() -> Self {
        DriftClock::new(0.0, 0.0)
    }

    /// Creates a clock whose actual error is drawn uniformly within
    /// ±`sca_bound_ppm`.
    pub fn with_random_error(sca_bound_ppm: f64, rng: &mut SimRng) -> Self {
        let ppm = if sca_bound_ppm > 0.0 {
            rng.uniform_range(-sca_bound_ppm, sca_bound_ppm)
        } else {
            0.0
        };
        DriftClock::new(ppm, sca_bound_ppm)
    }

    /// Creates a clock with a *realistic* error draw: the advertised bound
    /// covers temperature and aging extremes, so a crystal at room
    /// temperature typically runs well inside it. The error is Gaussian
    /// with σ = bound/3, clamped to the bound.
    pub fn realistic(sca_bound_ppm: f64, rng: &mut SimRng) -> Self {
        if sca_bound_ppm <= 0.0 {
            return DriftClock::new(0.0, 0.0);
        }
        let ppm = rng
            .normal(0.0, sca_bound_ppm / 3.0)
            .clamp(-sca_bound_ppm, sca_bound_ppm);
        DriftClock::new(ppm, sca_bound_ppm)
    }

    /// Sets the standard deviation (µs) of white jitter added at every
    /// scheduled wake-up (scheduling granularity, radio ramp-up variation).
    pub fn with_jitter_us(mut self, sigma_us: f64) -> Self {
        self.jitter_sigma_us = sigma_us;
        self
    }

    /// The actual fractional frequency error in ppm.
    pub fn ppm_error(&self) -> f64 {
        self.ppm_error
    }

    /// The advertised worst-case accuracy bound in ppm (what the `SCA` field
    /// encodes).
    pub fn sca_bound_ppm(&self) -> f64 {
        self.sca_bound_ppm
    }

    /// True simulation time at which a local timer of `local_delay`, armed at
    /// true time `reference`, expires.
    ///
    /// A fast clock (positive error) accumulates local time quickly, so its
    /// timers fire *early* in true time.
    pub fn true_after(&self, reference: Instant, local_delay: Duration) -> Instant {
        let scale = 1.0 / (1.0 + self.ppm_error * 1e-6);
        reference + local_delay.mul_f64(scale)
    }

    /// Like [`DriftClock::true_after`] but with per-wakeup Gaussian jitter.
    pub fn true_after_jittered(
        &self,
        reference: Instant,
        local_delay: Duration,
        rng: &mut SimRng,
    ) -> Instant {
        let base = self.true_after(reference, local_delay);
        if self.jitter_sigma_us <= 0.0 {
            return base;
        }
        let jitter_ns = (rng.normal(0.0, self.jitter_sigma_us) * 1_000.0).round() as i64;
        base.offset_ns(jitter_ns)
    }

    /// Local elapsed time corresponding to a true elapsed span.
    pub fn local_elapsed(&self, true_elapsed: Duration) -> Duration {
        true_elapsed.mul_f64(1.0 + self.ppm_error * 1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_clock_is_exact() {
        let c = DriftClock::ideal();
        let t = c.true_after(Instant::from_micros(100), Duration::from_micros(1250));
        assert_eq!(t, Instant::from_micros(1350));
    }

    #[test]
    fn fast_clock_fires_early_slow_clock_fires_late() {
        let fast = DriftClock::new(100.0, 100.0);
        let slow = DriftClock::new(-100.0, 100.0);
        let delay = Duration::from_millis(100);
        let tf = fast.true_after(Instant::ZERO, delay);
        let ts = slow.true_after(Instant::ZERO, delay);
        assert!(tf < Instant::ZERO + delay);
        assert!(ts > Instant::ZERO + delay);
        // 100 ppm over 100 ms = 10 µs.
        assert!((Instant::ZERO + delay).signed_delta_ns(tf).abs() - 10_000 < 100);
        assert!(ts.signed_delta_ns(Instant::ZERO + delay).abs() - 10_000 < 100);
    }

    #[test]
    fn random_error_respects_bound() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..100 {
            let c = DriftClock::with_random_error(50.0, &mut rng);
            assert!(c.ppm_error().abs() <= 50.0);
            assert_eq!(c.sca_bound_ppm(), 50.0);
        }
    }

    #[test]
    fn jitter_perturbs_but_stays_close() {
        let mut rng = SimRng::seed_from(12);
        let c = DriftClock::ideal().with_jitter_us(2.0);
        let nominal = Instant::from_micros(45_000);
        let mut max_dev = 0i64;
        for _ in 0..200 {
            let t = c.true_after_jittered(Instant::ZERO, Duration::from_micros(45_000), &mut rng);
            max_dev = max_dev.max(t.signed_delta_ns(nominal).abs());
        }
        assert!(max_dev > 0, "jitter should actually perturb");
        assert!(max_dev < 10_000, "5 sigma bound: {max_dev} ns");
    }

    #[test]
    fn local_elapsed_inverts_true_after() {
        let c = DriftClock::new(37.0, 50.0);
        let local = Duration::from_millis(200);
        let true_elapsed = c.true_after(Instant::ZERO, local) - Instant::ZERO;
        let roundtrip = c.local_elapsed(true_elapsed);
        let err = roundtrip.as_nanos() as i64 - local.as_nanos() as i64;
        assert!(err.abs() < 10, "roundtrip error {err} ns");
    }
}
