//! Deterministic randomness plumbing.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The simulation's random number generator.
///
/// Every stochastic element of the simulation (clock drift draws, per-attempt
/// multipath fading, demodulator phase luck, device jitter) pulls from one
/// seedable generator so that entire experiments replay bit-for-bit from a
/// seed. Forked child generators let independent subsystems stay decoupled
/// without sharing mutable access.
///
/// # Example
///
/// ```
/// use simkit::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator. The child's stream is a pure
    /// function of the parent state, so forking preserves determinism.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.inner.gen())
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn uniform_range(&mut self, low: f64, high: f64) -> f64 {
        assert!(low < high, "uniform_range requires low < high");
        low + (high - low) * self.uniform()
    }

    /// Standard normal draw (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        // Box–Muller transform; u is kept away from 0 so ln(u) is finite.
        let u = self.uniform().max(1e-300);
        let v = self.uniform();
        (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.gen_range(0..n)
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_deterministic_and_distinct() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        // The fork stream differs from the parent's continued stream.
        assert_ne!(a.next_u64(), fa.next_u64());
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1_000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SimRng::seed_from(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0)); // clamped
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SimRng::seed_from(4);
        for _ in 0..1000 {
            assert!(rng.below(37) < 37);
        }
    }
}
