//! Lightweight simulation tracing.
//!
//! The attack tooling and the test suite both need to inspect *what happened
//! when* inside a simulation run (anchor points, frame starts, heuristic
//! decisions). [`Trace`] is an in-memory, optionally-disabled record of
//! tagged events.

use std::fmt;

use crate::time::Instant;

/// One trace record: a timestamp, a static tag and free-form detail text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event happened.
    pub at: Instant,
    /// Machine-friendly category tag, e.g. `"tx-start"` or `"anchor"`.
    pub tag: &'static str,
    /// Human-friendly detail.
    pub detail: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.tag, self.detail)
    }
}

/// An append-only in-memory event trace.
///
/// # Example
///
/// ```
/// use simkit::{Instant, Trace};
/// let mut trace = Trace::enabled();
/// trace.record(Instant::ZERO, "anchor", "connection event 0".into());
/// assert_eq!(trace.records().len(), 1);
/// assert_eq!(trace.count_tag("anchor"), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    enabled: bool,
}

impl Trace {
    /// Creates a disabled trace: `record` calls are dropped at zero cost
    /// beyond a branch. This is the default for large experiment sweeps.
    pub fn disabled() -> Self {
        Trace {
            records: Vec::new(),
            enabled: false,
        }
    }

    /// Creates an enabled trace.
    pub fn enabled() -> Self {
        Trace {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// Whether records are currently being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record if tracing is enabled.
    pub fn record(&mut self, at: Instant, tag: &'static str, detail: String) {
        if self.enabled {
            self.records.push(TraceRecord { at, tag, detail });
        }
    }

    /// All records collected so far, in insertion (time) order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Iterates over records matching a tag.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records.iter().filter(move |r| r.tag == tag)
    }

    /// Counts records matching a tag.
    pub fn count_tag(&self, tag: &str) -> usize {
        self.with_tag(tag).count()
    }

    /// Drops all collected records, keeping the enabled/disabled state.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(Instant::ZERO, "x", "y".into());
        assert!(t.records().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_keeps_order_and_filters() {
        let mut t = Trace::enabled();
        t.record(Instant::from_micros(1), "a", "first".into());
        t.record(Instant::from_micros(2), "b", "second".into());
        t.record(Instant::from_micros(3), "a", "third".into());
        assert_eq!(t.records().len(), 3);
        assert_eq!(t.count_tag("a"), 2);
        let details: Vec<&str> = t.with_tag("a").map(|r| r.detail.as_str()).collect();
        assert_eq!(details, vec!["first", "third"]);
    }

    #[test]
    fn clear_retains_enabled_state() {
        let mut t = Trace::enabled();
        t.record(Instant::ZERO, "a", String::new());
        t.clear();
        assert!(t.records().is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn display_is_nonempty() {
        let r = TraceRecord {
            at: Instant::from_micros(150),
            tag: "ifs",
            detail: "slave response".into(),
        };
        assert!(format!("{r}").contains("ifs"));
    }
}
